// Wang et al. (HPCC'16): fit a regression tree to observed (configuration,
// runtime) samples, score a large candidate pool through the tree, and
// spend real executions on the best-scored candidates; refit as data grows.
#include <algorithm>
#include <numeric>

#include "model/tree.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

TuneResult RegressionTreeTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                                     const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);

  model::Dataset data;
  for (const auto& o : options.warm_start) {
    data.add(space->encode(o.config), tracker.penalize(o.runtime, o.failed));
  }

  const auto bootstrap = std::max<std::size_t>(
      6, static_cast<std::size_t>(params_.bootstrap_fraction * static_cast<double>(options.budget)));
  for (const auto& c : space->latin_hypercube(std::min(bootstrap, options.budget), rng)) {
    if (tracker.exhausted()) break;
    const auto& o = tracker.evaluate(c);
    data.add(space->encode(o.config), o.objective);
  }

  while (!tracker.exhausted()) {
    model::RegressionTree tree(
        model::TreeOptions{.max_depth = 10, .min_samples_leaf = 2, .min_samples_split = 4});
    tree.fit(data, rng.fork(tracker.used()));

    // Score a candidate pool; also explore around the best observation.
    std::vector<config::Configuration> pool;
    pool.reserve(params_.candidates);
    for (std::size_t i = 0; i < params_.candidates; ++i) pool.push_back(space->sample(rng));
    const TuneResult so_far = tracker.result();
    if (so_far.found_feasible) {
      for (std::size_t i = 0; i < params_.candidates / 8; ++i) {
        pool.push_back(space->neighbor(so_far.best, 0.15, 3, rng));
      }
    }
    std::vector<double> scores(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) scores[i] = tree.predict(space->encode(pool[i]));
    std::vector<std::size_t> order(pool.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

    for (std::size_t i = 0; i < params_.probes_per_round && !tracker.exhausted(); ++i) {
      const auto& o = tracker.evaluate(pool[order[i]]);
      data.add(space->encode(o.config), o.objective);
    }
  }
  return tracker.result();
}

}  // namespace stune::tuning
