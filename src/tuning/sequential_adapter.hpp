// Adapter that lets an inherently serial search loop (hill climbing, OFAT
// sweeps, online RL — strategies whose every decision depends on the
// previous outcome) speak the ask/tell protocol.
//
// The serial body runs on its own thread and calls SerialSession::evaluate()
// wherever it used to call the objective. evaluate() parks the thread at a
// rendezvous: the pending configuration becomes the next suggest() result
// (batches of one — the strategy genuinely cannot use more), and the
// matching observe() delivers the outcome and wakes the body. From the
// driver's side the adapter is an ordinary Tuner; from the strategy's side
// nothing changed but the spelling of "evaluate".
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"
#include "tuning/tuner.hpp"

namespace stune::tuning {

class SequentialAdapter;

/// Handle the serial body evaluates through. All methods are called from
/// the body's thread only.
class SerialSession {
 public:
  /// Block until the driver evaluates `c`; returns the committed
  /// observation (reference stable for the session: storage is reserved up
  /// front). Throws Cancelled if the session is torn down mid-run.
  const Observation& evaluate(const config::Configuration& c);

  bool exhausted() const;
  std::size_t remaining() const;
  std::size_t used() const;
  const std::vector<Observation>& history() const;

  /// Thrown out of evaluate() to unwind an abandoned body; the adapter
  /// catches it at the thread root. Bodies must let it propagate.
  struct Cancelled {};

 private:
  friend class SequentialAdapter;
  explicit SerialSession(SequentialAdapter& owner) : owner_(owner) {}
  SequentialAdapter& owner_;
};

class SequentialAdapter final : public Tuner {
 public:
  using SerialBody = std::function<void(std::shared_ptr<const config::ConfigSpace>,
                                        SerialSession&, const TuneOptions&)>;

  SequentialAdapter(std::string name, SerialBody body);
  ~SequentialAdapter() override;

  SequentialAdapter(const SequentialAdapter&) = delete;
  SequentialAdapter& operator=(const SequentialAdapter&) = delete;

  std::string name() const override { return name_; }
  void begin(std::shared_ptr<const config::ConfigSpace> space, const TuneOptions& options) override;
  std::vector<config::Configuration> suggest(std::size_t max_batch) override;
  void observe(const std::vector<Observation>& trials) override;

 private:
  friend class SerialSession;

  /// Whose move it is at the rendezvous.
  enum class Turn { kBody, kDriver, kFinished };

  void shutdown() STUNE_EXCLUDES(mu_);  // cancel a live body and join its thread

  const std::string name_;
  const SerialBody body_;

  // Driver-thread only: (re)created in begin() after the previous body has
  // been joined, so the new body observes it via the thread-creation
  // happens-before edge. The body receives the raw pointer by capture and
  // never touches this field.
  std::unique_ptr<SerialSession> session_;
  // Driver-thread only: joined/created in shutdown()/begin().
  std::thread thread_;

  mutable simcore::Mutex mu_{simcore::lock_rank::kSequentialAdapter};
  simcore::CondVar cv_;
  std::shared_ptr<const config::ConfigSpace> space_ STUNE_GUARDED_BY(mu_);
  TuneOptions options_ STUNE_GUARDED_BY(mu_);
  Turn turn_ STUNE_GUARDED_BY(mu_) = Turn::kFinished;
  bool cancel_ STUNE_GUARDED_BY(mu_) = false;
  std::exception_ptr body_error_ STUNE_GUARDED_BY(mu_);
  config::Configuration pending_ STUNE_GUARDED_BY(mu_);
  // Committed observations, in order. reserve(budget) in begin() keeps
  // references returned by evaluate() stable for the whole session.
  std::vector<Observation> history_ STUNE_GUARDED_BY(mu_);
};

}  // namespace stune::tuning
