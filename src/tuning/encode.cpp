#include "tuning/encode.hpp"

#include <cstddef>
#include <utility>
#include <vector>

namespace stune::tuning {

linalg::Matrix encode_pool(const config::ConfigSpace& space,
                           const std::vector<config::Configuration>& pool) {
  const std::size_t d = space.encoded_size();
  std::vector<double> flat;
  flat.reserve(pool.size() * d);
  for (const auto& c : pool) {
    const auto enc = space.encode(c);
    flat.insert(flat.end(), enc.begin(), enc.end());
  }
  return linalg::Matrix::from_flat(std::move(flat), pool.size(), d);
}

}  // namespace stune::tuning
