// Reinforcement-learning tuner, after Bu et al. (ICDCS'09), who tuned web
// server/container knobs online with Q-learning ("tuned 8 configuration
// parameters using 25 executions", paper §II-B).
//
// Practical adaptation to a 28-knob space: coordinate-wise tabular
// Q-learning. Each parameter is discretized into a few levels; its own
// Q-table scores {down, stay, up} (categorical/bool: {resample, stay}).
// Steps round-robin through parameters, pick actions epsilon-greedily,
// execute the resulting configuration, and reward relative runtime
// improvement. This is online tuning: every step depends on the previous
// reward, so the loop stays serial behind a SequentialAdapter.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tuning/tuners.hpp"

namespace stune::tuning {

namespace {

constexpr std::size_t kLevels = 5;
constexpr std::size_t kActions = 3;  // 0=down, 1=stay, 2=up

struct ParamAgent {
  // q[level][action]
  double q[kLevels][kActions] = {};
  std::size_t level = 0;
};

std::size_t level_of(const config::ParamDef& def, double value) {
  const double u = def.to_unit(value);
  return std::min<std::size_t>(kLevels - 1, static_cast<std::size_t>(u * kLevels));
}

double value_at(const config::ParamDef& def, std::size_t level) {
  const double u = (static_cast<double>(level) + 0.5) / kLevels;
  return def.from_unit(u);
}

void rl_serial(const RlTuner::Params& params, std::shared_ptr<const config::ConfigSpace> space,
               SerialSession& session, const TuneOptions& options) {
  simcore::Rng rng(options.seed);

  // Start from the best transferred configuration if one exists.
  config::Configuration current = space->default_config();
  if (const Observation* best_warm = best_warm_start(options)) current = best_warm->config;
  if (session.exhausted()) return;
  double current_obj = session.evaluate(current).objective;

  std::vector<ParamAgent> agents(space->size());
  for (std::size_t d = 0; d < space->size(); ++d) {
    agents[d].level = level_of(space->param(d), current[d]);
  }

  double epsilon = params.epsilon;
  std::size_t d = 0;
  while (!session.exhausted()) {
    auto& agent = agents[d % space->size()];
    const auto& def = space->param(d % space->size());
    const std::size_t dim = d % space->size();
    ++d;

    // Choose an action epsilon-greedily.
    std::size_t action;
    if (rng.bernoulli(epsilon)) {
      action = static_cast<std::size_t>(rng.uniform_int(0, kActions - 1));
    } else {
      action = 0;
      for (std::size_t a = 1; a < kActions; ++a) {
        if (agent.q[agent.level][a] > agent.q[agent.level][action]) action = a;
      }
    }

    // Apply the action to this parameter.
    std::size_t next_level = agent.level;
    config::Configuration trial = current;
    if (def.type == config::ParamType::kCategorical || def.type == config::ParamType::kBool) {
      if (action != 1) {
        // Resample to a random other value.
        const double card = std::max(1.0, def.max_value - def.min_value);
        trial.set(dim, def.min_value + static_cast<double>(rng.uniform_int(
                           0, static_cast<std::int64_t>(card))));
      }
    } else {
      if (action == 0 && next_level > 0) --next_level;
      if (action == 2 && next_level + 1 < kLevels) ++next_level;
      trial.set(dim, value_at(def, next_level));
    }

    const auto& o = session.evaluate(trial);
    // Reward: relative improvement of the objective (negative when worse).
    const double reward = (current_obj - o.objective) / std::max(current_obj, 1e-9);
    const double best_next = *std::max_element(agent.q[next_level], agent.q[next_level] + kActions);
    double& q = agent.q[agent.level][action];
    q += params.learning_rate * (reward + params.discount * best_next - q);

    if (o.objective < current_obj) {
      current = o.config;
      current_obj = o.objective;
      agent.level = next_level;
    }
    epsilon = std::max(params.min_epsilon, epsilon * params.epsilon_decay);
  }
}

}  // namespace

RlTuner::RlTuner(Params params)
    : adapter_("rl", [params](std::shared_ptr<const config::ConfigSpace> space,
                              SerialSession& session, const TuneOptions& options) {
        rl_serial(params, std::move(space), session, options);
      }) {}

void RlTuner::begin(std::shared_ptr<const config::ConfigSpace> space, const TuneOptions& options) {
  adapter_.begin(std::move(space), options);
}

std::vector<config::Configuration> RlTuner::suggest(std::size_t max_batch) {
  return adapter_.suggest(max_batch);
}

void RlTuner::observe(const std::vector<Observation>& trials) { adapter_.observe(trials); }

}  // namespace stune::tuning
