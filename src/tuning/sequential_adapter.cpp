#include "tuning/sequential_adapter.hpp"

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "simcore/check.hpp"

namespace stune::tuning {

using simcore::MutexLock;

const Observation& SerialSession::evaluate(const config::Configuration& c) {
  SequentialAdapter& a = owner_;
  const MutexLock lock(a.mu_);
  if (a.cancel_) throw Cancelled{};
  STUNE_CHECK(a.history_.size() < a.options_.budget)
      << a.name_ << ": serial body evaluated past its budget";
  a.pending_ = c;
  a.turn_ = SequentialAdapter::Turn::kDriver;
  a.cv_.notify_all();
  while (a.turn_ != SequentialAdapter::Turn::kBody && !a.cancel_) a.cv_.wait(a.mu_);
  if (a.cancel_) throw Cancelled{};
  return a.history_.back();
}

bool SerialSession::exhausted() const { return remaining() == 0; }

std::size_t SerialSession::remaining() const {
  const MutexLock lock(owner_.mu_);
  return owner_.options_.budget - owner_.history_.size();
}

std::size_t SerialSession::used() const {
  const MutexLock lock(owner_.mu_);
  return owner_.history_.size();
}

const std::vector<Observation>& SerialSession::history() const {
  // The reference is safe to hold only while the body is the active side of
  // the rendezvous (the driver mutates history_ exclusively while the body
  // is parked in evaluate()).
  const MutexLock lock(owner_.mu_);
  return owner_.history_;
}

SequentialAdapter::SequentialAdapter(std::string name, SerialBody body)
    : name_(std::move(name)), body_(std::move(body)) {
  STUNE_CHECK(body_ != nullptr) << name_ << ": null serial body";
}

SequentialAdapter::~SequentialAdapter() { shutdown(); }

void SequentialAdapter::shutdown() {
  {
    const MutexLock lock(mu_);
    cancel_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // Re-arm for the next session. Under the lock for the analysis's benefit;
  // at runtime the body thread is already joined.
  const MutexLock lock(mu_);
  cancel_ = false;
}

void SequentialAdapter::begin(std::shared_ptr<const config::ConfigSpace> space,
                              const TuneOptions& options) {
  STUNE_CHECK(space != nullptr) << name_ << ": begin() with null space";
  shutdown();  // abandon any previous session's body
  session_ = std::unique_ptr<SerialSession>(new SerialSession(*this));

  // The body must not read adapter fields directly (that would race with a
  // later begin() resetting them), so it gets its own copies.
  std::shared_ptr<const config::ConfigSpace> body_space;
  TuneOptions body_options;
  {
    const MutexLock lock(mu_);
    space_ = std::move(space);
    options_ = options;
    history_.clear();
    // Reference stability: evaluate() returns history_.back() and the body
    // may hold it across later evaluations; at most `budget` commits happen.
    history_.reserve(options_.budget);
    body_error_ = nullptr;
    pending_ = config::Configuration();
    turn_ = Turn::kBody;
    body_space = space_;
    body_options = options_;
  }

  thread_ = std::thread([this, body_space = std::move(body_space),
                         body_options = std::move(body_options), session = session_.get()] {
    try {
      body_(body_space, *session, body_options);
    } catch (const SerialSession::Cancelled&) {
      // Session torn down (destructor or restart) — normal unwind.
    } catch (...) {
      const MutexLock lock(mu_);
      body_error_ = std::current_exception();
    }
    const MutexLock lock(mu_);
    turn_ = Turn::kFinished;
    cv_.notify_all();
  });
}

std::vector<config::Configuration> SequentialAdapter::suggest(std::size_t max_batch) {
  STUNE_CHECK(max_batch > 0) << name_ << ": suggest() with zero batch";
  STUNE_CHECK(thread_.joinable()) << name_ << ": suggest() before begin()";
  const MutexLock lock(mu_);
  while (turn_ != Turn::kDriver && turn_ != Turn::kFinished) cv_.wait(mu_);
  if (body_error_ != nullptr) {
    const std::exception_ptr error = body_error_;
    body_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (turn_ == Turn::kFinished) {
    // The body returned early (defensive: none of ours do while budget
    // remains). Keep the protocol alive with a default configuration.
    return {space_->default_config()};
  }
  return {pending_};
}

void SequentialAdapter::observe(const std::vector<Observation>& trials) {
  const MutexLock lock(mu_);
  for (const auto& o : trials) history_.push_back(o);
  if (turn_ == Turn::kDriver) {
    turn_ = Turn::kBody;
    cv_.notify_all();
  }
}

}  // namespace stune::tuning
