#include "tuning/sequential_adapter.hpp"

#include "simcore/check.hpp"

namespace stune::tuning {

const Observation& SerialSession::evaluate(const config::Configuration& c) {
  SequentialAdapter& a = owner_;
  std::unique_lock<std::mutex> lock(a.mu_);
  if (a.cancel_) throw Cancelled{};
  STUNE_CHECK(a.history_.size() < a.options_.budget)
      << a.name_ << ": serial body evaluated past its budget";
  a.pending_ = c;
  a.turn_ = SequentialAdapter::Turn::kDriver;
  a.cv_.notify_all();
  a.cv_.wait(lock, [&a] { return a.turn_ == SequentialAdapter::Turn::kBody || a.cancel_; });
  if (a.cancel_) throw Cancelled{};
  return a.history_.back();
}

bool SerialSession::exhausted() const { return remaining() == 0; }

std::size_t SerialSession::remaining() const {
  const std::lock_guard<std::mutex> lock(owner_.mu_);
  return owner_.options_.budget - owner_.history_.size();
}

std::size_t SerialSession::used() const {
  const std::lock_guard<std::mutex> lock(owner_.mu_);
  return owner_.history_.size();
}

const std::vector<Observation>& SerialSession::history() const {
  const std::lock_guard<std::mutex> lock(owner_.mu_);
  return owner_.history_;
}

SequentialAdapter::SequentialAdapter(std::string name, SerialBody body)
    : name_(std::move(name)), body_(std::move(body)) {
  STUNE_CHECK(body_ != nullptr) << name_ << ": null serial body";
}

SequentialAdapter::~SequentialAdapter() { shutdown(); }

void SequentialAdapter::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    cancel_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  cancel_ = false;
}

void SequentialAdapter::begin(std::shared_ptr<const config::ConfigSpace> space,
                              const TuneOptions& options) {
  STUNE_CHECK(space != nullptr) << name_ << ": begin() with null space";
  shutdown();  // abandon any previous session's body
  space_ = std::move(space);
  options_ = options;
  session_ = std::unique_ptr<SerialSession>(new SerialSession(*this));
  history_.clear();
  // Reference stability: evaluate() returns history_.back() and the body
  // may hold it across later evaluations; at most `budget` commits happen.
  history_.reserve(options_.budget);
  body_error_ = nullptr;
  pending_ = config::Configuration();
  turn_ = Turn::kBody;
  thread_ = std::thread([this] {
    try {
      body_(space_, *session_, options_);
    } catch (const SerialSession::Cancelled&) {
      // Session torn down (destructor or restart) — normal unwind.
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      body_error_ = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(mu_);
    turn_ = Turn::kFinished;
    cv_.notify_all();
  });
}

std::vector<config::Configuration> SequentialAdapter::suggest(std::size_t max_batch) {
  STUNE_CHECK(max_batch > 0) << name_ << ": suggest() with zero batch";
  std::unique_lock<std::mutex> lock(mu_);
  STUNE_CHECK(thread_.joinable()) << name_ << ": suggest() before begin()";
  cv_.wait(lock, [this] { return turn_ == Turn::kDriver || turn_ == Turn::kFinished; });
  if (body_error_ != nullptr) {
    const std::exception_ptr error = body_error_;
    body_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (turn_ == Turn::kFinished) {
    // The body returned early (defensive: none of ours do while budget
    // remains). Keep the protocol alive with a default configuration.
    return {space_->default_config()};
  }
  return {pending_};
}

void SequentialAdapter::observe(const std::vector<Observation>& trials) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& o : trials) history_.push_back(o);
  if (turn_ == Turn::kDriver) {
    turn_ = Turn::kBody;
    cv_.notify_all();
  }
}

}  // namespace stune::tuning
