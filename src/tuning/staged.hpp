// Helper base for natively batch-capable strategies.
//
// A staged strategy thinks in stages: a warm-start probe, an LHS bootstrap,
// a GA generation, a grid round — each generated entirely from the history
// committed *before* the stage, so every configuration in a stage can be
// evaluated concurrently. StagedTuner keeps the queue and the common
// bookkeeping (history mirror, best-so-far); subclasses implement
//
//   start()   — reset strategy state for a new session,
//   plan()    — called with an empty queue and budget remaining; must
//               propose() at least one configuration,
//   record(o) — optional per-observation hook (e.g. grow a model dataset).
//
// The driver's protocol guarantees plan() only runs when every previously
// suggested configuration has been observed, so a stage's contents are a
// pure function of committed history and results are independent of
// evaluation concurrency.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "simcore/check.hpp"
#include "tuning/tuner.hpp"

namespace stune::tuning {

class StagedTuner : public Tuner {
 public:
  void begin(std::shared_ptr<const config::ConfigSpace> space, const TuneOptions& options) final {
    STUNE_CHECK(space != nullptr) << name() << ": begin() with null space";
    space_ = std::move(space);
    options_ = options;  // owned by value for the session's lifetime
    history_.clear();
    history_.reserve(options_.budget);
    queue_.clear();
    best_index_ = npos;
    least_index_ = npos;
    start();
  }

  std::vector<config::Configuration> suggest(std::size_t max_batch) final {
    STUNE_CHECK(max_batch > 0) << name() << ": suggest() with zero batch";
    if (queue_.empty()) plan();
    STUNE_CHECK(!queue_.empty()) << name() << ": plan() proposed no configurations";
    const std::size_t n = std::min(max_batch, queue_.size());
    std::vector<config::Configuration> batch(queue_.begin(),
                                             queue_.begin() + static_cast<std::ptrdiff_t>(n));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
    return batch;
  }

  void observe(const std::vector<Observation>& trials) final {
    for (const auto& o : trials) {
      history_.push_back(o);
      const std::size_t i = history_.size() - 1;
      if (!o.failed && (best_index_ == npos || o.runtime < history_[best_index_].runtime)) {
        best_index_ = i;
      }
      if (least_index_ == npos || o.objective < history_[least_index_].objective) {
        least_index_ = i;
      }
      record(history_[i]);
    }
  }

 protected:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  virtual void start() = 0;
  virtual void plan() = 0;
  virtual void record(const Observation& observation) { (void)observation; }

  /// Enqueue a configuration for the current stage.
  void propose(config::Configuration c) { queue_.push_back(std::move(c)); }
  /// Configurations proposed but not yet handed to the driver.
  std::size_t queued() const { return queue_.size(); }

  const config::ConfigSpace& space() const { return *space_; }
  std::shared_ptr<const config::ConfigSpace> space_ptr() const { return space_; }
  const TuneOptions& opts() const { return options_; }

  std::size_t used() const { return history_.size(); }
  std::size_t remaining() const {
    return options_.budget > history_.size() ? options_.budget - history_.size() : 0;
  }
  const std::vector<Observation>& history() const { return history_; }

  bool have_success() const { return best_index_ != npos; }
  const Observation& best_success() const {
    STUNE_CHECK(best_index_ != npos) << name() << ": no successful observation yet";
    return history_[best_index_];
  }
  /// Best successful runtime, or (with no success yet) the least-bad
  /// penalized score — the incumbent value acquisition functions improve on.
  double best_objective() const {
    if (best_index_ != npos) return history_[best_index_].runtime;
    if (least_index_ != npos) return history_[least_index_].objective;
    return std::numeric_limits<double>::infinity();
  }

  /// Warm-start scoring (no real run has happened yet; see cold_penalty).
  double penalize_warm(double runtime, bool failed) const {
    return cold_penalty(options_, runtime, failed);
  }

 private:
  std::shared_ptr<const config::ConfigSpace> space_;
  TuneOptions options_;
  std::deque<config::Configuration> queue_;
  std::vector<Observation> history_;
  std::size_t best_index_ = npos;
  std::size_t least_index_ = npos;
};

}  // namespace stune::tuning
