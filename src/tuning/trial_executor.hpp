// The evaluation side of the ask/tell protocol: TrialExecutor drives a
// Tuner session, runs each suggested batch — on a simcore::ThreadPool when
// jobs > 1 — and commits observations back in suggestion order.
//
// Determinism argument: the engine is a pure function of (cluster, plan,
// config, seed), so a trial's outcome does not depend on when or where it
// runs. The only scheduling-sensitive state is the session bookkeeping
// (budget, failure penalties, best-so-far), and that is updated serially,
// in suggestion order, after the whole batch has finished. Hence jobs=1 and
// jobs=N produce bitwise-identical histories and results.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"
#include "simcore/thread_pool.hpp"
#include "tuning/tuner.hpp"

namespace stune::tuning {

/// Per-session bookkeeping: budget, failure penalization and best-so-far.
/// Owns its options by value — the EvalTracker it replaces held
/// `const Objective&`/`const TuneOptions&` members that dangled whenever
/// the tracker outlived the caller's frame.
class SessionLedger {
 public:
  explicit SessionLedger(TuneOptions options);

  bool exhausted() const { return used_ >= options_.budget; }
  std::size_t remaining() const { return options_.budget - used_; }
  std::size_t used() const { return used_; }

  /// Score an outcome the way commit() will, given the penalties seen so
  /// far. Path dependent: a failure is scored off the worst *successful*
  /// runtime observed before it.
  double penalize(double runtime, bool failed) const;

  /// Record one evaluated trial (consumes budget; must be called in
  /// suggestion order). Returns the stored observation.
  const Observation& commit(const config::Configuration& c, const EvalOutcome& outcome);

  /// Result assembled from everything committed so far.
  TuneResult result() const;

  const std::vector<Observation>& history() const { return history_; }
  const TuneOptions& options() const { return options_; }

 private:
  TuneOptions options_;  // owned by value, not a reference
  std::vector<Observation> history_;
  std::size_t used_ = 0;
  std::size_t best_index_ = static_cast<std::size_t>(-1);
  double worst_success_ = 0.0;
};

struct ExecutorOptions {
  /// Worker threads evaluating a suggested batch. 1 = serial (no pool is
  /// created); 0 = one per hardware thread.
  std::size_t jobs = 1;
};

class TrialExecutor {
 public:
  /// Called serially, in suggestion order, once per committed observation —
  /// the place for side effects (ledgers, knowledge bases) that must not
  /// run concurrently or out of order.
  using CommitHook = std::function<void(const Observation&)>;

  explicit TrialExecutor(ExecutorOptions options = {});

  /// Drive one complete tuning session. The objective must be safe to call
  /// from multiple threads when jobs > 1 (pure simulation runs are).
  ///
  /// Thread-safe: a shared executor (the TuningService keeps one for all
  /// tenants) serializes whole sessions under mu_, so two callers can never
  /// interleave suggest/observe on the worker pool or race its lazy
  /// construction.
  TuneResult run(Tuner& tuner, std::shared_ptr<const config::ConfigSpace> space,
                 const Objective& objective, const TuneOptions& options,
                 const CommitHook& on_commit = {}) STUNE_EXCLUDES(mu_);

  /// Resolved worker count (0 in the options maps to hardware threads).
  std::size_t jobs() const { return jobs_; }

 private:
  const std::size_t jobs_;  // immutable after construction
  simcore::Mutex mu_;       // serializes sessions on a shared executor
  std::unique_ptr<simcore::ThreadPool> pool_ STUNE_GUARDED_BY(mu_);  // created on first parallel batch
};

}  // namespace stune::tuning
