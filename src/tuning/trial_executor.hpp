// The evaluation side of the ask/tell protocol: TrialExecutor drives a
// Tuner session, runs each suggested batch — on a simcore::ThreadPool when
// jobs > 1 — and commits observations back in suggestion order.
//
// Resilience: each trial is evaluated through a retry loop that classifies
// failures (ConfigFault vs InfraFault), retries infra faults with capped
// exponential backoff plus deterministic jitter (in simulated time), and
// enforces a per-trial deadline. Only config faults are charged a penalty;
// an infra fault that exhausts its retries consumes a budget slot but gets
// a neutral objective, so the tuner neither rewards nor blames the
// configuration for the weather.
//
// Determinism argument: the engine is a pure function of (cluster, plan,
// config, seed), and the retry loop is a pure function of (objective,
// config, options) — backoff jitter derives from (seed, config, attempt),
// never from wall clocks. The only scheduling-sensitive state is the
// session bookkeeping (budget, failure penalties, best-so-far), and that is
// updated serially, in suggestion order, after the whole batch has
// finished. Hence jobs=1 and jobs=N produce bitwise-identical histories and
// results, faults or no faults.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"
#include "simcore/thread_pool.hpp"
#include "tuning/tuner.hpp"

namespace stune::tuning {

/// Outcome of one trial after the retry loop settled it.
struct TrialResult {
  EvalOutcome outcome;         // final attempt (classification normalized)
  int attempts = 1;            // evaluations consumed, including retries
  double backoff_seconds = 0.0;  // simulated wait between attempts
  bool deadline_hit = false;   // some attempt ran past the trial deadline
};

/// Run one trial to completion under the session's retry policy. Pure in
/// its arguments (thread-safe when the objective is), which is what lets
/// worker threads evaluate trials concurrently without ordering effects.
TrialResult evaluate_with_retry(const TrialObjective& objective, const config::Configuration& c,
                                const TuneOptions& options);

/// Per-session bookkeeping: budget, failure penalization and best-so-far.
/// Owns its options by value — the EvalTracker it replaces held
/// `const Objective&`/`const TuneOptions&` members that dangled whenever
/// the tracker outlived the caller's frame.
class SessionLedger {
 public:
  explicit SessionLedger(TuneOptions options);

  bool exhausted() const { return used_ >= options_.budget; }
  std::size_t remaining() const { return options_.budget - used_; }
  std::size_t used() const { return used_; }

  /// Score a config-fault outcome the way commit() will, given the
  /// penalties seen so far. Path dependent: a failure is scored off the
  /// worst *successful* runtime observed before it, floored by
  /// options.failure_penalty_floor so a trial that crashes instantly
  /// before any success cannot score near zero.
  double penalize(double runtime, bool failed) const;

  /// Objective granted to a trial the infrastructure killed: the mean
  /// successful runtime so far (the floor before any success). Neutral by
  /// construction — neither a penalty nor a reward.
  double neutral_objective() const;

  /// Record one evaluated trial (consumes budget; must be called in
  /// suggestion order). Returns the stored observation.
  const Observation& commit(const config::Configuration& c, const TrialResult& trial);
  const Observation& commit(const config::Configuration& c, const EvalOutcome& outcome);

  /// Result assembled from everything committed so far.
  TuneResult result() const;

  const std::vector<Observation>& history() const { return history_; }
  const TuneOptions& options() const { return options_; }
  const ResilienceStats& resilience() const { return resilience_; }

 private:
  TuneOptions options_;  // owned by value, not a reference
  std::vector<Observation> history_;
  ResilienceStats resilience_;
  std::size_t used_ = 0;
  std::size_t best_index_ = static_cast<std::size_t>(-1);
  double worst_success_ = 0.0;
  double success_sum_ = 0.0;
  std::size_t success_count_ = 0;
};

struct ExecutorOptions {
  /// Worker threads evaluating a suggested batch. 1 = serial (no pool is
  /// created); 0 = one per hardware thread.
  std::size_t jobs = 1;
};

class TrialExecutor {
 public:
  /// Called serially, in suggestion order, once per committed observation —
  /// the place for side effects (ledgers, knowledge bases) that must not
  /// run concurrently or out of order.
  using CommitHook = std::function<void(const Observation&)>;

  explicit TrialExecutor(ExecutorOptions options = {});

  /// Drive one complete tuning session. The objective must be safe to call
  /// from multiple threads when jobs > 1 (pure simulation runs are).
  ///
  /// Thread-safe: a shared executor (the TuningService keeps one for all
  /// tenants) serializes whole sessions under mu_, so two callers can never
  /// interleave suggest/observe on the worker pool or race its lazy
  /// construction.
  TuneResult run(Tuner& tuner, std::shared_ptr<const config::ConfigSpace> space,
                 const TrialObjective& objective, const TuneOptions& options,
                 const CommitHook& on_commit = {}) STUNE_EXCLUDES(mu_);

  /// Attempt-blind convenience overload for objectives that predate fault
  /// injection (every attempt would see the same outcome anyway).
  TuneResult run(Tuner& tuner, std::shared_ptr<const config::ConfigSpace> space,
                 const Objective& objective, const TuneOptions& options,
                 const CommitHook& on_commit = {}) STUNE_EXCLUDES(mu_);

  /// Resolved worker count (0 in the options maps to hardware threads).
  std::size_t jobs() const { return jobs_; }

 private:
  const std::size_t jobs_;  // immutable after construction
  // Serializes sessions on a shared executor. Acquired with the service
  // mutex held (TuningService::tune_disc), before the adapter/pool mutexes.
  simcore::Mutex mu_{simcore::lock_rank::kTrialExecutor};
  std::unique_ptr<simcore::ThreadPool> pool_ STUNE_GUARDED_BY(mu_);  // created on first parallel batch
};

}  // namespace stune::tuning
