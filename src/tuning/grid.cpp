// Iterated zoom grid search: full-factorial rounds over the current
// unit-space bounds. Numeric parameters get L evenly spaced levels (L sized
// so the round roughly fits the remaining budget); bool/categorical
// parameters enumerate every value. After a round the bounds shrink around
// the incumbent if it improved, or reset to the full space otherwise.
//
// Deliberately deterministic and repetitive — the classic exhaustive
// baseline. Zoomed rounds often re-propose the same sanitized
// configuration (integer grids collapse under fine bounds), which is
// exactly the access pattern the evaluation cache turns into free lookups.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "tuning/tuners.hpp"

namespace stune::tuning {

namespace {

bool is_enumerated(const config::ParamDef& def) {
  return def.type == config::ParamType::kBool || def.type == config::ParamType::kCategorical;
}

}  // namespace

void GridSearchTuner::start() {
  lo_.assign(space().size(), 0.0);
  hi_.assign(space().size(), 1.0);
  incumbent_unit_.clear();
  incumbent_obj_ = std::numeric_limits<double>::infinity();
  stage_start_ = 0;
  warm_stage_ = false;
  round_stage_ = false;
  first_plan_ = true;
}

void GridSearchTuner::plan() {
  finalize_stage();
  if (first_plan_) {
    first_plan_ = false;
    if (const Observation* warm = best_warm_start(opts())) {
      warm_stage_ = true;
      stage_start_ = used();
      propose(warm->config);
      return;
    }
  }
  build_round();
}

void GridSearchTuner::finalize_stage() {
  const bool had_stage = warm_stage_ || round_stage_;
  if (!had_stage || used() <= stage_start_) return;

  bool improved = false;
  for (std::size_t i = stage_start_; i < used(); ++i) {
    const Observation& o = history()[i];
    if (o.objective < incumbent_obj_) {
      incumbent_obj_ = o.objective;
      incumbent_unit_ = space().to_unit(o.config);
      improved = true;
    }
  }
  if (warm_stage_) {
    // Search near the transferred configuration first, but not too tightly.
    warm_stage_ = false;
    if (improved) shrink_around(0.8);
    return;
  }
  round_stage_ = false;
  if (incumbent_unit_.empty()) return;
  if (improved) {
    shrink_around(params_.shrink);
  } else {
    lo_.assign(space().size(), 0.0);  // diverge: restart from the full space
    hi_.assign(space().size(), 1.0);
  }
}

void GridSearchTuner::shrink_around(double factor) {
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    const double half = 0.5 * (hi_[d] - lo_[d]) * factor;
    lo_[d] = std::clamp(incumbent_unit_[d] - half, 0.0, 1.0);
    hi_[d] = std::clamp(incumbent_unit_[d] + half, lo_[d] + 1e-9, 1.0);
  }
}

void GridSearchTuner::build_round() {
  round_stage_ = true;
  stage_start_ = used();
  const std::size_t cap = std::max<std::size_t>(1, remaining());

  // Enumerated dimensions fix their factor of the grid; the numeric level
  // count L is then sized so the full factorial roughly fits the budget.
  std::vector<std::size_t> levels(space().size(), 1);
  double enumerated_product = 1.0;
  std::size_t numeric_dims = 0;
  for (std::size_t d = 0; d < space().size(); ++d) {
    const auto& def = space().param(d);
    if (is_enumerated(def)) {
      levels[d] = std::max<std::size_t>(1, std::min(def.cardinality(), params_.max_levels));
      enumerated_product = std::min(enumerated_product * static_cast<double>(levels[d]), 1e18);
    } else {
      ++numeric_dims;
    }
  }
  std::size_t numeric_levels = 2;
  if (numeric_dims > 0) {
    const double per_numeric =
        std::max(1.0, static_cast<double>(cap) / enumerated_product);
    numeric_levels = static_cast<std::size_t>(
        std::floor(std::pow(per_numeric, 1.0 / static_cast<double>(numeric_dims))));
    numeric_levels = std::clamp<std::size_t>(numeric_levels, 2, params_.max_levels);
  }
  double total = 1.0;
  for (std::size_t d = 0; d < space().size(); ++d) {
    const auto& def = space().param(d);
    if (!is_enumerated(def)) {
      levels[d] = numeric_levels;
      if (def.type == config::ParamType::kInt) {
        levels[d] = std::min(levels[d], std::max<std::size_t>(2, def.cardinality()));
      }
    }
    total = std::min(total * static_cast<double>(levels[d]), 1e18);
  }

  // Mixed-radix enumeration, dimension 0 varying fastest, truncated to the
  // budget. Numeric levels are endpoint grids in the current bounds;
  // enumerated levels pick the category by centre fraction.
  const std::size_t count =
      total < static_cast<double>(cap) ? static_cast<std::size_t>(total) : cap;
  std::vector<double> unit(space().size());
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t index = i;
    for (std::size_t d = 0; d < space().size(); ++d) {
      const std::size_t digit = index % levels[d];
      index /= levels[d];
      if (is_enumerated(space().param(d))) {
        unit[d] = (static_cast<double>(digit) + 0.5) / static_cast<double>(levels[d]);
      } else if (levels[d] == 1) {
        unit[d] = 0.5 * (lo_[d] + hi_[d]);
      } else {
        unit[d] = lo_[d] + (hi_[d] - lo_[d]) * static_cast<double>(digit) /
                               static_cast<double>(levels[d] - 1);
      }
    }
    propose(space().from_unit(unit));
  }
}

}  // namespace stune::tuning
