// Tuner interface shared by every configuration-search strategy the paper
// surveys (§II) plus the supporting bookkeeping: evaluation budget,
// failure penalties and warm-start observations (for knowledge transfer,
// §V-B).
//
// Objectives are minimized and measured in seconds of workload runtime;
// failed executions (OOM, infeasible deployment) are first-class — tuners
// see them and must not treat a crash as a good time.
//
// Strategies speak an ask/tell protocol: the driver (TrialExecutor) calls
// suggest() for a batch of configurations, evaluates them — possibly in
// parallel, possibly answering from a cache — and hands the scored
// observations back through observe(). Every suggested configuration is
// observed, in suggestion order, before the next suggest(), so a strategy's
// decision stream is a pure function of its committed history and results
// are identical whatever the evaluation concurrency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "config/config_space.hpp"
#include "simcore/rng.hpp"

namespace stune::tuning {

/// Blame assignment for a failed evaluation. A ConfigFault is the
/// configuration's doing (OOM, infeasible deployment, past-deadline run)
/// and must be penalized so the tuner learns to avoid it. An InfraFault
/// (spot revocation, transient error, timeout) says nothing about the
/// configuration: the executor retries it and never charges a penalty.
enum class FaultClass { kNone, kConfig, kInfra };

struct EvalOutcome {
  double runtime = 0.0;  // seconds (time burned, even when failed)
  bool failed = false;
  /// Classification of a failure. kNone on a failed outcome is normalized
  /// to kConfig by the executor (legacy objectives predate the taxonomy).
  FaultClass fault = FaultClass::kNone;
};

using Objective = std::function<EvalOutcome(const config::Configuration&)>;
/// Objective that sees the retry attempt index (0 = first try), so fault
/// injection can re-roll its draws per attempt.
using TrialObjective = std::function<EvalOutcome(const config::Configuration&, int attempt)>;

struct Observation {
  config::Configuration config;
  double runtime = 0.0;    // raw outcome (final attempt)
  bool failed = false;
  double objective = 0.0;  // penalized score tuners rank/fit on
  FaultClass fault = FaultClass::kNone;  // blame for a failed outcome
  int attempts = 1;                      // evaluations consumed incl. retries
  double backoff_seconds = 0.0;          // simulated wait between attempts
};

/// Retry discipline for infrastructure faults: capped exponential backoff
/// with deterministic jitter, all in simulated time (nothing sleeps).
struct RetryPolicy {
  /// Total attempts per trial (1 = never retry).
  int max_attempts = 3;
  double base_backoff_s = 5.0;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 120.0;
  /// Jitter as a fraction of the backoff (+/-), derived deterministically
  /// from (seed, config, attempt) so jobs=N replays jobs=1.
  double jitter_fraction = 0.25;
  /// Kill any attempt running past this; a successful-but-late run counts
  /// as a config fault (the configuration is too slow to be useful), an
  /// infra hang keeps its infra classification and is retried.
  double trial_deadline_s = std::numeric_limits<double>::infinity();
};

struct TuneOptions {
  /// Number of workload executions the tuner may spend.
  std::size_t budget = 100;
  std::uint64_t seed = 1;
  /// Observations transferred from a similar workload (may be empty). They
  /// cost no budget; tuners should treat them as hints, not ground truth.
  std::vector<Observation> warm_start;
  /// Failed runs are scored as factor * (worst successful runtime so far).
  double failure_penalty_factor = 3.0;
  /// Penalty base before any success exists. Without a floor an instantly
  /// crashing trial (runtime ~ 0) would score near zero and could be
  /// crowned by the all-failures fallback; the floor pins early failures
  /// to at least the scale of a plausible real runtime.
  double failure_penalty_floor = 600.0;
  RetryPolicy retry{};
};

/// Fault accounting of one tuning session.
struct ResilienceStats {
  std::size_t config_faults = 0;  // trials charged to the configuration
  std::size_t infra_faults = 0;   // trials lost to infrastructure (retries exhausted)
  std::size_t retries = 0;        // extra attempts consumed by infra faults
  std::size_t deadline_hits = 0;  // attempts killed by the trial deadline
  double backoff_seconds = 0.0;   // total simulated backoff wait

  bool operator==(const ResilienceStats&) const = default;
};

struct TuneResult {
  config::Configuration best;
  double best_runtime = std::numeric_limits<double>::infinity();
  bool found_feasible = false;
  std::vector<Observation> history;  // evaluation order
  ResilienceStats resilience;

  /// Best successful runtime after each evaluation (infinity until the
  /// first success) — the convergence curve benchmarks plot.
  std::vector<double> best_curve() const;
};

/// A configuration-search strategy, driven ask/tell style.
///
/// Session shape (enforced by the driver):
///   begin(space, options);
///   while budget remains:
///     batch = suggest(remaining);     // 1 <= batch.size() <= remaining
///     observe(scored batch);          // same configs, suggestion order
///
/// suggest() returns the strategy's natural batch — a whole random stage, a
/// GA generation, a single model-guided probe — and must never exceed
/// `max_batch`. observe() delivers every outcome of the previous suggest()
/// before the next suggest() is made, so strategies never see partial or
/// reordered batches.
class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;

  /// Start (or restart) a tuning session. Resets all per-session state.
  virtual void begin(std::shared_ptr<const config::ConfigSpace> space,
                     const TuneOptions& options) = 0;
  /// Next configurations to evaluate; non-empty, at most max_batch.
  virtual std::vector<config::Configuration> suggest(std::size_t max_batch) = 0;
  /// Scored outcomes of the previous suggest(), in suggestion order.
  virtual void observe(const std::vector<Observation>& trials) = 0;

  /// Convenience: run a complete serial session (the pre-ask/tell `tune`
  /// signature, kept so call sites that do not care about parallelism or
  /// caching stay one-liners). Implemented on top of TrialExecutor.
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options);
};

/// Score an outcome the way the executor scores it before any success has
/// been observed (used to score warm-start observations, which arrive
/// before the session has a "worst successful runtime").
double cold_penalty(const TuneOptions& options, double runtime, bool failed);

/// Best non-failed warm-start observation, or nullptr. The shared "is the
/// transferred configuration worth a probe?" helper.
const Observation* best_warm_start(const TuneOptions& options);

/// Registry of every implemented strategy, for benches that sweep tuners.
std::vector<std::unique_ptr<Tuner>> all_tuners();
std::unique_ptr<Tuner> make_tuner(std::string_view name);
std::vector<std::string> tuner_names();

}  // namespace stune::tuning
