// Tuner interface shared by every configuration-search strategy the paper
// surveys (§II) plus the supporting bookkeeping: evaluation budget,
// failure penalties and warm-start observations (for knowledge transfer,
// §V-B).
//
// Objectives are minimized and measured in seconds of workload runtime;
// failed executions (OOM, infeasible deployment) are first-class — tuners
// see them and must not treat a crash as a good time.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "config/config_space.hpp"
#include "simcore/rng.hpp"

namespace stune::tuning {

struct EvalOutcome {
  double runtime = 0.0;  // seconds (time burned, even when failed)
  bool failed = false;
};

using Objective = std::function<EvalOutcome(const config::Configuration&)>;

struct Observation {
  config::Configuration config;
  double runtime = 0.0;    // raw outcome
  bool failed = false;
  double objective = 0.0;  // penalized score tuners rank/fit on
};

struct TuneOptions {
  /// Number of workload executions the tuner may spend.
  std::size_t budget = 100;
  std::uint64_t seed = 1;
  /// Observations transferred from a similar workload (may be empty). They
  /// cost no budget; tuners should treat them as hints, not ground truth.
  std::vector<Observation> warm_start;
  /// Failed runs are scored as factor * (worst successful runtime so far).
  double failure_penalty_factor = 3.0;
};

struct TuneResult {
  config::Configuration best;
  double best_runtime = std::numeric_limits<double>::infinity();
  bool found_feasible = false;
  std::vector<Observation> history;  // evaluation order

  /// Best successful runtime after each evaluation (infinity until the
  /// first success) — the convergence curve benchmarks plot.
  std::vector<double> best_curve() const;
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;
  virtual TuneResult tune(std::shared_ptr<const config::ConfigSpace> space,
                          const Objective& objective, const TuneOptions& options) = 0;
};

/// Budget/penalty bookkeeping shared by tuner implementations.
class EvalTracker {
 public:
  EvalTracker(const Objective& objective, const TuneOptions& options);

  /// Run one evaluation (consumes budget). Returns the recorded observation.
  const Observation& evaluate(const config::Configuration& c);
  bool exhausted() const { return used_ >= options_.budget; }
  std::size_t remaining() const { return options_.budget - used_; }
  std::size_t used() const { return used_; }

  /// Score an outcome the way evaluate() does (used to score warm starts).
  double penalize(double runtime, bool failed) const;

  /// Result assembled from everything evaluated so far.
  TuneResult result() const;

  const std::vector<Observation>& history() const { return history_; }
  double best_objective() const;

 private:
  const Objective& objective_;
  const TuneOptions& options_;
  std::vector<Observation> history_;
  std::size_t used_ = 0;
  std::size_t best_index_ = static_cast<std::size_t>(-1);
  double worst_success_ = 0.0;
};

/// Registry of every implemented strategy, for benches that sweep tuners.
std::vector<std::unique_ptr<Tuner>> all_tuners();
std::unique_ptr<Tuner> make_tuner(std::string_view name);
std::vector<std::string> tuner_names();

}  // namespace stune::tuning
