// The configuration-tuning strategies surveyed in paper §II, implemented
// against the common ask/tell Tuner interface:
//
//  - RandomSearchTuner    : uniform random sampling (the paper's Table I
//                           protocol uses 100 random configurations).
//  - GridSearchTuner      : iterated zoom grid — full-factorial rounds over
//                           the current bounds, shrinking around the
//                           incumbent (the classic exhaustive baseline;
//                           batch-friendly and cache-friendly).
//  - CoordinateSweepTuner : one-factor-at-a-time expert sweep (the "manual
//                           measurement" baseline of §II).
//  - HillClimbTuner       : modified hill climbing with restarts (MROnline).
//  - BayesOptTuner        : Gaussian-process Bayesian optimization with
//                           expected improvement (CherryPick).
//  - GeneticTuner         : evolutionary search on live executions.
//  - DacTuner             : DAC-style hierarchical-model-assisted GA —
//                           fit a random forest on observed runs, evolve
//                           on the model, validate the winners for real.
//  - BestConfigTuner      : divide-and-diverge sampling plus recursive
//                           bound-and-search (BestConfig).
//  - RegressionTreeTuner  : Wang et al. — fit a regression tree, probe its
//                           most promising leaves.
//  - RlTuner              : Bu et al. — online coordinate-wise Q-learning.
//
// Batch-capable strategies (random, grid, bayesopt, genetic, dac,
// bestconfig, rtree) extend StagedTuner and emit whole stages; inherently
// serial ones (sweep, hillclimb, rl — every decision depends on the
// previous outcome) keep their loop bodies verbatim behind a
// SequentialAdapter.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "model/dataset.hpp"
#include "model/gp.hpp"
#include "tuning/sequential_adapter.hpp"
#include "tuning/staged.hpp"
#include "tuning/tuner.hpp"

namespace stune::simcore {
class ThreadPool;
}

namespace stune::tuning {

class RandomSearchTuner final : public StagedTuner {
 public:
  std::string name() const override { return "random"; }

 private:
  void start() override;
  void plan() override;

  simcore::Rng rng_{0};
  bool first_plan_ = true;
};

class GridSearchTuner final : public StagedTuner {
 public:
  struct Params {
    /// Cap on levels per dimension (and per categorical enumeration).
    std::size_t max_levels = 64;
    /// Bound shrink factor around the incumbent after an improving round.
    double shrink = 0.5;
  };
  GridSearchTuner() : GridSearchTuner(Params{}) {}
  explicit GridSearchTuner(Params params) : params_(params) {}
  std::string name() const override { return "grid"; }

 private:
  void start() override;
  void plan() override;
  void finalize_stage();
  void shrink_around(double factor);
  void build_round();

  Params params_;
  std::vector<double> lo_, hi_;  // unit-space bounds, one pair per parameter
  std::vector<double> incumbent_unit_;
  double incumbent_obj_ = 0.0;
  std::size_t stage_start_ = 0;
  bool warm_stage_ = false;
  bool round_stage_ = false;
  bool first_plan_ = true;
};

class CoordinateSweepTuner final : public Tuner {
 public:
  /// Levels probed per parameter during a sweep.
  explicit CoordinateSweepTuner(std::size_t levels = 4);
  std::string name() const override { return "sweep"; }
  void begin(std::shared_ptr<const config::ConfigSpace> space, const TuneOptions& options) override;
  std::vector<config::Configuration> suggest(std::size_t max_batch) override;
  void observe(const std::vector<Observation>& trials) override;

 private:
  SequentialAdapter adapter_;
};

class HillClimbTuner final : public Tuner {
 public:
  struct Params {
    double initial_step = 0.3;
    double step_decay = 0.9;
    double min_step = 0.03;
    std::size_t stall_limit = 14;  // non-improving moves before restart
  };
  HillClimbTuner() : HillClimbTuner(Params{}) {}
  explicit HillClimbTuner(Params params);
  std::string name() const override { return "hillclimb"; }
  void begin(std::shared_ptr<const config::ConfigSpace> space, const TuneOptions& options) override;
  std::vector<config::Configuration> suggest(std::size_t max_batch) override;
  void observe(const std::vector<Observation>& trials) override;

 private:
  SequentialAdapter adapter_;
};

class BayesOptTuner final : public StagedTuner {
 public:
  struct Params {
    std::size_t init_samples = 10;      // LHS bootstrap
    std::size_t candidates = 512;       // acquisition pool size
    std::size_t local_candidates = 64;  // neighbours of the incumbent
    /// Surrogate options (incremental refresh policy, lengthscale grid).
    model::GaussianProcess::Options gp{};
    /// Worker threads for batched acquisition scoring. 1 = serial; any
    /// value yields bitwise-identical suggestions (disjoint-slice shards).
    std::size_t predict_jobs = 1;
  };
  BayesOptTuner() : BayesOptTuner(Params{}) {}
  explicit BayesOptTuner(Params params) : params_(std::move(params)) {}
  std::string name() const override { return "bayesopt"; }

 private:
  void start() override;
  void plan() override;
  void record(const Observation& observation) override;

  Params params_;
  simcore::Rng rng_{0};
  /// Persistent incremental surrogate: record() feeds it one observation at
  /// a time (O(n²) factor extension) instead of refitting per plan() call.
  model::GaussianProcess gp_;
  std::shared_ptr<simcore::ThreadPool> pool_;
  std::optional<config::Configuration> warm_;
  bool did_warm_ = false;
  bool did_bootstrap_ = false;
};

class GeneticTuner final : public StagedTuner {
 public:
  struct Params {
    std::size_t population = 20;
    double crossover_rate = 0.9;
    double mutation_rate = 0.15;
    std::size_t tournament = 3;
    std::size_t elites = 2;
  };
  GeneticTuner() : GeneticTuner(Params{}) {}
  explicit GeneticTuner(Params params) : params_(params) {}
  std::string name() const override { return "genetic"; }

 private:
  void start() override;
  void plan() override;
  void record(const Observation& observation) override;

  Params params_;
  simcore::Rng rng_{0};
  std::vector<config::Configuration> population_;  // current generation
  std::vector<double> fitness_;                    // its fully-known fitness
  std::vector<config::Configuration> pending_;     // next generation (elites + children)
  std::vector<double> elite_fitness_;              // carried over without re-evaluation
  std::vector<double> stage_obj_;                  // objectives observed this stage
  bool initialized_ = false;
};

class DacTuner final : public StagedTuner {
 public:
  struct Params {
    /// Fraction of budget spent on the initial random training set.
    double bootstrap_fraction = 0.5;
    std::size_t model_generations = 30;
    std::size_t model_population = 60;
    /// Real validations per refinement round.
    std::size_t validations_per_round = 5;
  };
  DacTuner() : DacTuner(Params{}) {}
  explicit DacTuner(Params params) : params_(params) {}
  std::string name() const override { return "dac"; }

 private:
  void start() override;
  void plan() override;
  void record(const Observation& observation) override;

  Params params_;
  simcore::Rng rng_{0};
  model::Dataset data_;
  std::optional<config::Configuration> warm_;
  bool did_warm_ = false;
  bool did_bootstrap_ = false;
};

class BestConfigTuner final : public StagedTuner {
 public:
  struct Params {
    std::size_t rounds = 4;
    /// Bound shrink factor around the incumbent per round.
    double shrink = 0.5;
  };
  BestConfigTuner() : BestConfigTuner(Params{}) {}
  explicit BestConfigTuner(Params params) : params_(params) {}
  std::string name() const override { return "bestconfig"; }

 private:
  void start() override;
  void plan() override;
  void finalize_stage();
  void shrink_bounds(double factor);

  Params params_;
  simcore::Rng rng_{0};
  std::vector<double> lo_, hi_;  // unit-space search bounds
  double incumbent_obj_ = 0.0;
  std::vector<double> incumbent_unit_;
  std::optional<config::Configuration> warm_;
  std::size_t round_count_ = 0;
  std::size_t stage_start_ = 0;
  bool warm_stage_ = false;
  bool round_stage_ = false;
  bool did_warm_ = false;
};

/// Bu et al. (ICDCS'09)-style online reinforcement learning: coordinate-wise
/// tabular Q-learning over discretized parameter levels.
class RlTuner final : public Tuner {
 public:
  struct Params {
    double learning_rate = 0.4;
    double discount = 0.5;
    double epsilon = 0.5;
    double epsilon_decay = 0.97;
    double min_epsilon = 0.1;
  };
  RlTuner() : RlTuner(Params{}) {}
  explicit RlTuner(Params params);
  std::string name() const override { return "rl"; }
  void begin(std::shared_ptr<const config::ConfigSpace> space, const TuneOptions& options) override;
  std::vector<config::Configuration> suggest(std::size_t max_batch) override;
  void observe(const std::vector<Observation>& trials) override;

 private:
  SequentialAdapter adapter_;
};

class RegressionTreeTuner final : public StagedTuner {
 public:
  struct Params {
    double bootstrap_fraction = 0.4;
    std::size_t candidates = 2000;  // model-scored candidates per round
    std::size_t probes_per_round = 8;
    /// Worker threads for batched candidate scoring. 1 = serial; any value
    /// yields bitwise-identical suggestions (disjoint-slice shards).
    std::size_t predict_jobs = 1;
  };
  RegressionTreeTuner() : RegressionTreeTuner(Params{}) {}
  explicit RegressionTreeTuner(Params params) : params_(params) {}
  std::string name() const override { return "rtree"; }

 private:
  void start() override;
  void plan() override;
  void record(const Observation& observation) override;

  Params params_;
  simcore::Rng rng_{0};
  model::Dataset data_;
  std::shared_ptr<simcore::ThreadPool> pool_;
  bool did_bootstrap_ = false;
};

}  // namespace stune::tuning
