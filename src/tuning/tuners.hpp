// The configuration-tuning strategies surveyed in paper §II, implemented
// against the common Tuner interface:
//
//  - RandomSearchTuner    : uniform random sampling (the paper's Table I
//                           protocol uses 100 random configurations).
//  - CoordinateSweepTuner : one-factor-at-a-time expert sweep (the "manual
//                           measurement" baseline of §II).
//  - HillClimbTuner       : modified hill climbing with restarts (MROnline).
//  - BayesOptTuner        : Gaussian-process Bayesian optimization with
//                           expected improvement (CherryPick).
//  - GeneticTuner         : evolutionary search on live executions.
//  - DacTuner             : DAC-style hierarchical-model-assisted GA —
//                           fit a random forest on observed runs, evolve
//                           on the model, validate the winners for real.
//  - BestConfigTuner      : divide-and-diverge sampling plus recursive
//                           bound-and-search (BestConfig).
//  - RegressionTreeTuner  : Wang et al. — fit a regression tree, probe its
//                           most promising leaves.
#pragma once

#include "tuning/tuner.hpp"

namespace stune::tuning {

class RandomSearchTuner final : public Tuner {
 public:
  std::string name() const override { return "random"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;
};

class CoordinateSweepTuner final : public Tuner {
 public:
  /// Levels probed per parameter during a sweep.
  explicit CoordinateSweepTuner(std::size_t levels = 4) : levels_(levels) {}
  std::string name() const override { return "sweep"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  std::size_t levels_;
};

class HillClimbTuner final : public Tuner {
 public:
  struct Params {
    double initial_step = 0.3;
    double step_decay = 0.9;
    double min_step = 0.03;
    std::size_t stall_limit = 14;  // non-improving moves before restart
  };
  HillClimbTuner() : HillClimbTuner(Params{}) {}
  explicit HillClimbTuner(Params params) : params_(params) {}
  std::string name() const override { return "hillclimb"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  Params params_;
};

class BayesOptTuner final : public Tuner {
 public:
  struct Params {
    std::size_t init_samples = 10;   // LHS bootstrap
    std::size_t candidates = 512;    // acquisition pool size
    std::size_t local_candidates = 64;  // neighbours of the incumbent
  };
  BayesOptTuner() : BayesOptTuner(Params{}) {}
  explicit BayesOptTuner(Params params) : params_(params) {}
  std::string name() const override { return "bayesopt"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  Params params_;
};

class GeneticTuner final : public Tuner {
 public:
  struct Params {
    std::size_t population = 20;
    double crossover_rate = 0.9;
    double mutation_rate = 0.15;
    std::size_t tournament = 3;
    std::size_t elites = 2;
  };
  GeneticTuner() : GeneticTuner(Params{}) {}
  explicit GeneticTuner(Params params) : params_(params) {}
  std::string name() const override { return "genetic"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  Params params_;
};

class DacTuner final : public Tuner {
 public:
  struct Params {
    /// Fraction of budget spent on the initial random training set.
    double bootstrap_fraction = 0.5;
    std::size_t model_generations = 30;
    std::size_t model_population = 60;
    /// Real validations per refinement round.
    std::size_t validations_per_round = 5;
  };
  DacTuner() : DacTuner(Params{}) {}
  explicit DacTuner(Params params) : params_(params) {}
  std::string name() const override { return "dac"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  Params params_;
};

class BestConfigTuner final : public Tuner {
 public:
  struct Params {
    std::size_t rounds = 4;
    /// Bound shrink factor around the incumbent per round.
    double shrink = 0.5;
  };
  BestConfigTuner() : BestConfigTuner(Params{}) {}
  explicit BestConfigTuner(Params params) : params_(params) {}
  std::string name() const override { return "bestconfig"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  Params params_;
};

/// Bu et al. (ICDCS'09)-style online reinforcement learning: coordinate-wise
/// tabular Q-learning over discretized parameter levels.
class RlTuner final : public Tuner {
 public:
  struct Params {
    double learning_rate = 0.4;
    double discount = 0.5;
    double epsilon = 0.5;
    double epsilon_decay = 0.97;
    double min_epsilon = 0.1;
  };
  RlTuner() : RlTuner(Params{}) {}
  explicit RlTuner(Params params) : params_(params) {}
  std::string name() const override { return "rl"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  Params params_;
};

class RegressionTreeTuner final : public Tuner {
 public:
  struct Params {
    double bootstrap_fraction = 0.4;
    std::size_t candidates = 2000;  // model-scored candidates per round
    std::size_t probes_per_round = 8;
  };
  RegressionTreeTuner() : RegressionTreeTuner(Params{}) {}
  explicit RegressionTreeTuner(Params params) : params_(params) {}
  std::string name() const override { return "rtree"; }
  TuneResult tune(std::shared_ptr<const config::ConfigSpace> space, const Objective& objective,
                  const TuneOptions& options) override;

 private:
  Params params_;
};

}  // namespace stune::tuning
