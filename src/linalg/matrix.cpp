#include "linalg/matrix.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "simcore/check.hpp"

namespace stune::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::matvec(const Vector& x) const {
  STUNE_CHECK_EQ(x.size(), cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::matvec_transposed(const Vector& x) const {
  STUNE_CHECK_EQ(x.size(), rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  STUNE_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

void Matrix::add_to_diagonal(double value) {
  const std::size_t n = rows_ < cols_ ? rows_ : cols_;
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double dot(const Vector& a, const Vector& b) {
  STUNE_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  STUNE_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(const Vector& a, const Vector& b) {
  STUNE_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scaled(const Vector& a, double alpha) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * alpha;
  return out;
}

Matrix cholesky(const Matrix& a) {
  STUNE_CHECK_EQ(a.rows(), a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw std::runtime_error("cholesky: matrix is not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  STUNE_CHECK(l.rows() == l.cols() && b.size() == l.rows());
  const std::size_t n = l.rows();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
  STUNE_CHECK(l.rows() == l.cols() && y.size() == l.rows());
  const std::size_t n = l.rows();
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
    x[i] = acc / l(i, i);
  }
  return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

Vector ridge_solve(const Matrix& x, const Vector& y, double lambda) {
  STUNE_CHECK_EQ(x.rows(), y.size());
  Matrix gram = x.gram();
  gram.add_to_diagonal(lambda);
  const Vector xty = x.matvec_transposed(y);
  const Matrix l = cholesky(gram);
  return cholesky_solve(l, xty);
}

Vector nnls(const Matrix& x, const Vector& y, std::size_t max_iters) {
  STUNE_CHECK_EQ(x.rows(), y.size());
  const std::size_t d = x.cols();
  // Precompute Gram and X^T y; coordinate descent on the quadratic objective
  // with projection onto w >= 0.
  Matrix gram = x.gram();
  gram.add_to_diagonal(1e-10);  // guard against exactly collinear columns
  const Vector xty = x.matvec_transposed(y);
  Vector w(d, 0.0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      double grad = -xty[j];
      for (std::size_t k = 0; k < d; ++k) grad += gram(j, k) * w[k];
      const double denom = gram(j, j);
      if (denom <= 0.0) continue;
      const double updated = std::max(0.0, w[j] - grad / denom);
      max_delta = std::max(max_delta, std::abs(updated - w[j]));
      w[j] = updated;
    }
    if (max_delta < 1e-12) break;
  }
  return w;
}

}  // namespace stune::linalg
