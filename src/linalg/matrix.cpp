#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "simcore/check.hpp"

namespace stune::linalg {

namespace {

/// acc + a·b as one hardware fused multiply-add when this TU is built with
/// FMA support, and as a plainly rounded multiply + add otherwise. The
/// optimizer's implicit contraction makes the fuse/don't-fuse choice per
/// generated loop version (a vectorized body and its scalar epilogue can
/// disagree), which would let the same column come out bitwise different
/// depending on how many columns ride along. An explicit call pins one
/// semantics for every path, so the multi-RHS tile, its tail, and the
/// single-vector solve stay mutually bitwise identical.
inline double fma_acc(double acc, double a, double b) {
#ifdef __FMA__
  return __builtin_fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// acc - a·b with the same pinned-contraction contract as fma_acc.
inline double fnma_acc(double acc, double a, double b) {
#ifdef __FMA__
  return __builtin_fma(-a, b, acc);
#else
  return acc - a * b;
#endif
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_flat(std::vector<double> data, std::size_t rows, std::size_t cols) {
  STUNE_CHECK_EQ(data.size(), rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Vector Matrix::matvec(const Vector& x) const {
  STUNE_CHECK_EQ(x.size(), cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::matvec_transposed(const Vector& x) const {
  STUNE_CHECK_EQ(x.size(), rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] = fma_acc(y[c], row[c], xr);
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  STUNE_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

void Matrix::add_to_diagonal(double value) {
  const std::size_t n = rows_ < cols_ ? rows_ : cols_;
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double dot(const Vector& a, const Vector& b) {
  STUNE_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  STUNE_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(const Vector& a, const Vector& b) {
  STUNE_CHECK_EQ(a.size(), b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scaled(const Vector& a, double alpha) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * alpha;
  return out;
}

namespace {

/// Panel width of the blocked Cholesky. 32 columns keep the diagonal block,
/// one panel row and one trailing row (~8 KiB together at n=512) resident in
/// L1 while the rank-k update streams over contiguous rows.
constexpr std::size_t kCholeskyBlock = 32;

}  // namespace

Matrix cholesky(const Matrix& a) {
  STUNE_CHECK_EQ(a.rows(), a.cols());
  const std::size_t n = a.rows();
  // Factor in place on a working copy; the strict upper triangle still holds
  // A's entries during the sweep and is zeroed before returning.
  Matrix l = a;
  for (std::size_t j0 = 0; j0 < n; j0 += kCholeskyBlock) {
    const std::size_t jb = std::min(kCholeskyBlock, n - j0);
    const std::size_t jend = j0 + jb;
    // Factor the diagonal block (unblocked; prior blocks already applied
    // their trailing updates, so only in-block contributions remain).
    for (std::size_t j = j0; j < jend; ++j) {
      const double* lj = l.row_ptr(j);
      double diag = lj[j];
      for (std::size_t k = j0; k < j; ++k) diag -= lj[k] * lj[k];
      if (diag <= 0.0 || !std::isfinite(diag)) {
        throw std::runtime_error("cholesky: matrix is not positive definite");
      }
      const double root = std::sqrt(diag);
      l(j, j) = root;
      for (std::size_t i = j + 1; i < jend; ++i) {
        double* li = l.row_ptr(i);
        double acc = li[j];
        for (std::size_t k = j0; k < j; ++k) acc -= li[k] * lj[k];
        li[j] = acc / root;
      }
    }
    // Panel solve: L21 := A21 L11^-T (trsm, one contiguous row at a time).
    for (std::size_t i = jend; i < n; ++i) {
      double* li = l.row_ptr(i);
      for (std::size_t j = j0; j < jend; ++j) {
        const double* lj = l.row_ptr(j);
        double acc = li[j];
        for (std::size_t k = j0; k < j; ++k) acc -= li[k] * lj[k];
        li[j] = acc / lj[j];
      }
    }
    // Trailing update: A22 -= L21 L21ᵀ (symmetric rank-jb, lower triangle).
    // Row-major dot products over the panel columns — the cache-friendly
    // O(n³) bulk of the factorization.
    for (std::size_t i = jend; i < n; ++i) {
      const double* li = l.row_ptr(i);
      for (std::size_t j = jend; j <= i; ++j) {
        const double* lj = l.row_ptr(j);
        double acc = 0.0;
        for (std::size_t k = j0; k < jend; ++k) acc += li[k] * lj[k];
        l(i, j) -= acc;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* li = l.row_ptr(i);
    for (std::size_t j = i + 1; j < n; ++j) li[j] = 0.0;
  }
  return l;
}

Matrix cholesky_append(const Matrix& l, const Vector& new_row) {
  STUNE_CHECK_EQ(l.rows(), l.cols());
  STUNE_CHECK_EQ(new_row.size(), l.rows() + 1);
  const std::size_t n = l.rows();
  const Vector k12(new_row.begin(), new_row.begin() + static_cast<std::ptrdiff_t>(n));
  const Vector l12 = solve_lower(l, k12);
  const double diag = new_row[n] - dot(l12, l12);
  if (diag <= 0.0 || !std::isfinite(diag)) {
    throw std::runtime_error("cholesky_append: extended matrix is not positive definite");
  }
  Matrix out(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(l.row_ptr(i), l.row_ptr(i) + i + 1, out.row_ptr(i));
  }
  std::copy(l12.begin(), l12.end(), out.row_ptr(n));
  out(n, n) = std::sqrt(diag);
  return out;
}

void syrk_sub_lower(const Matrix& a, Matrix& c) {
  STUNE_CHECK(c.rows() == c.cols() && a.rows() == c.rows());
  const std::size_t n = c.rows();
  const std::size_t k = a.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const double* ai = a.row_ptr(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const double* aj = a.row_ptr(j);
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * aj[p];
      c(i, j) -= acc;
    }
  }
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  STUNE_CHECK(l.rows() == l.cols() && b.size() == l.rows());
  const std::size_t n = l.rows();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc = fnma_acc(acc, l(i, k), y[k]);
    y[i] = acc / l(i, i);
  }
  return y;
}

namespace {

/// Forward-substitution over one tile of `W` right-hand-side columns,
/// starting at column `j0`. Per column this is exactly the vector overload's
/// recurrence — subtract l(i,k)·y(k,·) for k ascending, then divide — so each
/// column matches the scalar solve bitwise (no skips, no reassociation).
/// Keeping the k-loop innermost holds the W running columns of row i in
/// registers instead of re-loading and re-storing them once per k, which is
/// what makes the multi-RHS solve cache- and port-bound instead of
/// latency-bound.
template <std::size_t W>
void solve_lower_tile(const Matrix& l, Matrix& y, std::size_t j0) {
  const std::size_t n = l.rows();
  // Panel the k-dimension so the 32×W panel of finished y-rows stays in L1
  // while it is subtracted from every later row (the unpaneled sweep re-reads
  // the whole upper part of y from L2 for each output row). Each column
  // still sees its subtractions in ascending-k order, one individually
  // rounded op each — storing the running value between panels does not
  // change it — so the result is bitwise identical to the unpaneled solve.
  constexpr std::size_t kPanel = 32;
  for (std::size_t kb = 0; kb < n; kb += kPanel) {
    const std::size_t ke = std::min(kb + kPanel, n);
    // Diagonal block: finish rows kb..ke (earlier panels already applied).
    for (std::size_t i = kb; i < ke; ++i) {
      const double* li = l.row_ptr(i);
      double* __restrict yi = y.row_ptr(i) + j0;
      double acc[W];
      for (std::size_t j = 0; j < W; ++j) acc[j] = yi[j];
      for (std::size_t k = kb; k < i; ++k) {
        const double lik = li[k];
        const double* __restrict yk = y.row_ptr(k) + j0;
        for (std::size_t j = 0; j < W; ++j) acc[j] = fnma_acc(acc[j], lik, yk[j]);
      }
      const double lii = li[i];
      for (std::size_t j = 0; j < W; ++j) yi[j] = acc[j] / lii;
    }
    // Panel update: subtract the finished panel from all later rows.
    for (std::size_t i = ke; i < n; ++i) {
      const double* li = l.row_ptr(i);
      double* __restrict yi = y.row_ptr(i) + j0;
      double acc[W];
      for (std::size_t j = 0; j < W; ++j) acc[j] = yi[j];
      for (std::size_t k = kb; k < ke; ++k) {
        const double lik = li[k];
        const double* __restrict yk = y.row_ptr(k) + j0;
        for (std::size_t j = 0; j < W; ++j) acc[j] = fnma_acc(acc[j], lik, yk[j]);
      }
      for (std::size_t j = 0; j < W; ++j) yi[j] = acc[j];
    }
  }
}

/// Runtime-width tail of the tiled solve (w < the compile-time tile width).
/// Same per-column operation sequence as solve_lower_tile.
void solve_lower_tail(const Matrix& l, Matrix& y, std::size_t j0, std::size_t w) {
  const std::size_t n = l.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const double* li = l.row_ptr(i);
    double* __restrict yi = y.row_ptr(i) + j0;
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      const double* __restrict yk = y.row_ptr(k) + j0;
      for (std::size_t j = 0; j < w; ++j) yi[j] = fnma_acc(yi[j], lik, yk[j]);
    }
    const double lii = li[i];
    for (std::size_t j = 0; j < w; ++j) yi[j] /= lii;
  }
}

}  // namespace

Matrix solve_lower(const Matrix& l, const Matrix& b) {
  STUNE_CHECK(l.rows() == l.cols() && b.rows() == l.rows());
  const std::size_t m = b.cols();
  Matrix y = b;
  // Column tiling only changes which columns are in flight together; the
  // arithmetic inside any one column is tile-width independent, so the result
  // is bitwise identical for every tiling (and to the vector overload).
  constexpr std::size_t kTile = 32;
  std::size_t j0 = 0;
  for (; j0 + kTile <= m; j0 += kTile) solve_lower_tile<kTile>(l, y, j0);
  if (j0 < m) solve_lower_tail(l, y, j0, m - j0);
  return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
  STUNE_CHECK(l.rows() == l.cols() && y.size() == l.rows());
  const std::size_t n = l.rows();
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
    x[i] = acc / l(i, i);
  }
  return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

Vector ridge_solve(const Matrix& x, const Vector& y, double lambda) {
  STUNE_CHECK_EQ(x.rows(), y.size());
  Matrix gram = x.gram();
  gram.add_to_diagonal(lambda);
  const Vector xty = x.matvec_transposed(y);
  const Matrix l = cholesky(gram);
  return cholesky_solve(l, xty);
}

Vector nnls(const Matrix& x, const Vector& y, std::size_t max_iters) {
  STUNE_CHECK_EQ(x.rows(), y.size());
  const std::size_t d = x.cols();
  // Precompute Gram and X^T y; coordinate descent on the quadratic objective
  // with projection onto w >= 0.
  Matrix gram = x.gram();
  gram.add_to_diagonal(1e-10);  // guard against exactly collinear columns
  const Vector xty = x.matvec_transposed(y);
  Vector w(d, 0.0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      double grad = -xty[j];
      for (std::size_t k = 0; k < d; ++k) grad += gram(j, k) * w[k];
      const double denom = gram(j, j);
      if (denom <= 0.0) continue;
      const double updated = std::max(0.0, w[j] - grad / denom);
      max_delta = std::max(max_delta, std::abs(updated - w[j]));
      w[j] = updated;
    }
    if (max_delta < 1e-12) break;
  }
  return w;
}

}  // namespace stune::linalg
