// Minimal dense linear algebra for the performance models (ridge regression,
// Gaussian processes, NNLS). Matrices are small here (a few hundred rows at
// most), so a flat row-major implementation is both sufficient and easy to
// audit. The Cholesky path is the surrogate hot loop and gets the blocked
// treatment: a right-looking blocked factorization, a multi-RHS triangular
// solve (trsm-style), a symmetric rank-k trailing update and a rank-1
// `cholesky_append` that extends an existing factor in O(n²).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stune::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);
  /// Adopt a flat row-major buffer; data.size() must equal rows * cols.
  static Matrix from_flat(std::vector<double> data, std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous view of one row (row-major storage makes this free).
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }
  /// The flat row-major buffer backing the matrix.
  const std::vector<double>& flat() const { return data_; }

  /// this * x. Requires x.size() == cols().
  Vector matvec(const Vector& x) const;
  /// this^T * x. Requires x.size() == rows().
  Vector matvec_transposed(const Vector& x) const;
  Matrix transposed() const;
  /// this * other. Requires cols() == other.rows().
  Matrix multiply(const Matrix& other) const;
  /// this^T * this (Gram matrix), computed symmetrically.
  Matrix gram() const;

  void add_to_diagonal(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// -- Vector helpers ---------------------------------------------------------

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
Vector subtract(const Vector& a, const Vector& b);
Vector scaled(const Vector& a, double alpha);

// -- Factorizations ---------------------------------------------------------

/// Cholesky factorization of a symmetric positive definite matrix: A = L L^T.
/// Blocked right-looking variant: panel factorizations feed a symmetric
/// rank-k trailing update whose inner loops run over contiguous rows, so the
/// O(n³) bulk is cache-friendly instead of strided.
/// Throws std::runtime_error if A is not (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Extend the Cholesky factor L of an n×n SPD matrix A to the factor of the
/// (n+1)×(n+1) matrix obtained by appending `new_row` as the last row and
/// column (new_row = [a_{n+1,1..n}, a_{n+1,n+1}]). One forward solve plus a
/// dot product: O(n²) instead of refactorizing in O(n³).
/// Throws std::runtime_error if the extended matrix is not positive definite
/// (the existing factor is left untouched — the call is purely functional).
Matrix cholesky_append(const Matrix& l, const Vector& new_row);

/// C -= A Aᵀ restricted to the lower triangle (symmetric rank-k update, the
/// trailing-update kernel of the blocked Cholesky). Requires a.rows() ==
/// c.rows() == c.cols(); the strict upper triangle of C is not referenced.
void syrk_sub_lower(const Matrix& a, Matrix& c);

/// Solve L y = b for lower-triangular L (forward substitution).
Vector solve_lower(const Matrix& l, const Vector& b);

/// Multi-RHS forward substitution: solve L Y = B column-wise for an n×m B
/// (trsm-style). Each column reproduces the vector overload bitwise — the
/// per-element operation sequence is identical — so batched consumers can
/// assert exact agreement with their scalar paths.
Matrix solve_lower(const Matrix& l, const Matrix& b);

/// Solve L^T x = y for lower-triangular L (backward substitution).
Vector solve_lower_transposed(const Matrix& l, const Vector& y);

/// Solve A x = b via the Cholesky factor L of A.
Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Solve the ridge system (X^T X + lambda I) w = X^T y.
Vector ridge_solve(const Matrix& x, const Vector& y, double lambda);

/// Non-negative least squares min ||X w - y||^2 s.t. w >= 0, via projected
/// coordinate descent. Used by the Ernest-style scaling model, whose basis
/// terms are physically non-negative.
Vector nnls(const Matrix& x, const Vector& y, std::size_t max_iters = 500);

}  // namespace stune::linalg
