// Minimal dense linear algebra for the performance models (ridge regression,
// Gaussian processes, NNLS). Matrices are small here (a few hundred rows at
// most), so a straightforward row-major implementation is both sufficient
// and easy to audit.
#pragma once

#include <cstddef>
#include <vector>

namespace stune::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// this * x. Requires x.size() == cols().
  Vector matvec(const Vector& x) const;
  /// this^T * x. Requires x.size() == rows().
  Vector matvec_transposed(const Vector& x) const;
  Matrix transposed() const;
  /// this * other. Requires cols() == other.rows().
  Matrix multiply(const Matrix& other) const;
  /// this^T * this (Gram matrix), computed symmetrically.
  Matrix gram() const;

  void add_to_diagonal(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// -- Vector helpers ---------------------------------------------------------

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
Vector subtract(const Vector& a, const Vector& b);
Vector scaled(const Vector& a, double alpha);

// -- Factorizations ---------------------------------------------------------

/// Cholesky factorization of a symmetric positive definite matrix: A = L L^T.
/// Throws std::runtime_error if A is not (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Solve L y = b for lower-triangular L (forward substitution).
Vector solve_lower(const Matrix& l, const Vector& b);

/// Solve L^T x = y for lower-triangular L (backward substitution).
Vector solve_lower_transposed(const Matrix& l, const Vector& y);

/// Solve A x = b via the Cholesky factor L of A.
Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Solve the ridge system (X^T X + lambda I) w = X^T y.
Vector ridge_solve(const Matrix& x, const Vector& y, double lambda);

/// Non-negative least squares min ||X w - y||^2 s.t. w >= 0, via projected
/// coordinate descent. Used by the Ernest-style scaling model, whose basis
/// terms are physically non-negative.
Vector nnls(const Matrix& x, const Vector& y, std::size_t max_iters = 500);

}  // namespace stune::linalg
