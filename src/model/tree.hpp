// CART regression tree (variance-reduction splits), the building block of
// the Wang et al. regression-tree tuner and the random forest used by the
// DAC-style model-driven genetic search and PARIS.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "model/dataset.hpp"
#include "simcore/rng.hpp"

namespace stune::simcore {
class ThreadPool;
}

namespace stune::model {

struct TreeOptions {
  std::size_t max_depth = 10;
  std::size_t min_samples_leaf = 3;
  std::size_t min_samples_split = 6;
  /// Fraction of features considered per split (random forests use < 1).
  double feature_subsample = 1.0;
  /// Candidate thresholds per feature (quantile cuts), bounds split search.
  std::size_t candidate_cuts = 16;
};

class RegressionTree {
 public:
  explicit RegressionTree(TreeOptions options = {}) : options_(options) {}

  /// `rng` drives feature subsampling (pass a fork per tree in forests).
  void fit(const Dataset& data, simcore::Rng rng = simcore::Rng(1));
  double predict(const std::vector<double>& x) const;
  /// Score every row of `candidates` in one traversal pass. With a pool,
  /// rows are sharded into contiguous ranges whose workers write disjoint
  /// output slices; each traversal is independent of shard boundaries, so
  /// the result is bitwise identical to looped predict() at any job count.
  std::vector<double> predict_batch(const linalg::Matrix& candidates,
                                    simcore::ThreadPool* pool = nullptr) const;
  bool fitted() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

  /// Total SSE reduction contributed by splits on each feature — a crude
  /// interpretability measure (paper §V-A asks tuning models to expose what
  /// drives performance).
  std::vector<double> feature_importance() const;

 private:
  struct Node {
    int feature = -1;  // -1: leaf
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction
    double gain = 0.0;   // SSE reduction of this split
    int left = -1;
    int right = -1;
    int depth = 0;
  };

  int build(const Dataset& data, std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, int depth, simcore::Rng& rng);
  double predict_row(const double* x) const;

  TreeOptions options_;
  std::size_t dim_ = 0;
  std::vector<Node> nodes_;
};

struct ForestOptions {
  std::size_t trees = 40;
  TreeOptions tree{};
  /// Bootstrap sample fraction per tree.
  double bootstrap_fraction = 1.0;
};

class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {});

  void fit(const Dataset& data, simcore::Rng rng = simcore::Rng(1));
  double predict(const std::vector<double>& x) const;
  /// Mean and variance across trees (a cheap uncertainty proxy).
  void predict_dist(const std::vector<double>& x, double* mean, double* var) const;
  bool fitted() const { return !trees_.empty(); }
  std::vector<double> feature_importance() const;

 private:
  ForestOptions options_;
  std::vector<RegressionTree> trees_;
};

}  // namespace stune::model
