// Additive Gaussian process (Duvenaud, Nickisch & Rasmussen, NIPS'11) —
// the paper's §V-A candidate for *interpretable* tuning models: "decomposes
// the model into a sum of low-dimensional functions, each depending on only
// a subset of the input variables, potentially enabling the interpretation
// of input interactions and their influence on the variance of the overall
// model."
//
// Kernel: k(x, x') = sum_d  w_d * Matern52(|x_d - x'_d| / ell_d).
// Per-dimension weights w_d are fit by coordinate ascent on the log
// marginal likelihood; the normalized weights are the model's *relevance*
// vector — which configuration parameters the runtime actually responds to.
//
// Like GaussianProcess, the model is incremental: observe() appends one
// kernel row and extends the Cholesky factor in O(n²), and the expensive
// coordinate-ascent refit only re-runs every `refresh_interval`
// observations or when the per-point log marginal likelihood degrades.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "model/dataset.hpp"
#include "model/gp.hpp"

namespace stune::model {

class AdditiveGaussianProcess {
 public:
  struct Options {
    /// Noise levels tried by marginal likelihood (as a fraction of target
    /// variance). Real tuning data has a large non-additive component, so
    /// the grid must reach high values or the model interpolates noise.
    std::vector<double> noise_grid = {0.01, 0.05, 0.15, 0.4, 1.0};
    /// Multiplier grid tried per dimension weight during coordinate ascent.
    std::vector<double> weight_grid = {0.0, 0.25, 1.0, 3.0};
    std::size_t sweeps = 2;
    /// observe(): coordinate-ascent refreshes run every this many
    /// observations; in between the factor is extended incrementally under
    /// frozen weights, lengthscales and noise.
    std::size_t refresh_interval = 8;
    /// Early-refresh trigger, in nats of per-point LML degradation.
    double lml_drop_per_point = 1.0;
    /// When false, observe() refactorizes from scratch each observation
    /// (same schedule, frozen hyperparameters) — the benchmark baseline.
    bool incremental = true;
  };

  AdditiveGaussianProcess() : AdditiveGaussianProcess(Options{}) {}
  explicit AdditiveGaussianProcess(Options options) : options_(std::move(options)) {}

  /// `feature_owners` (optional) maps each feature to a semantic group
  /// (e.g. one-hot features of one categorical parameter); relevance() is
  /// reported per group. Empty = one group per feature.
  void fit(const Dataset& data, std::vector<std::size_t> feature_owners = {});

  /// Append one observation and update the factorization in O(n²); see
  /// GaussianProcess::observe for the failure contract (never throws on
  /// numerical failure, check fitted()).
  void observe(std::span<const double> x, double y);
  void observe(std::initializer_list<double> x, double y) {
    observe(std::span<const double>(x.begin(), x.size()), y);
  }

  GpPrediction predict(std::span<const double> x) const;
  GpPrediction predict(std::initializer_list<double> x) const {
    return predict(std::span<const double>(x.begin(), x.size()));
  }
  /// Score every candidate row through one kernel-block build and one
  /// multi-RHS triangular solve; bitwise identical to looped predict().
  std::vector<GpPrediction> predict_batch(const linalg::Matrix& candidates) const;

  bool fitted() const { return fitted_; }
  std::size_t size() const { return n_; }
  double log_marginal_likelihood() const { return lml_; }
  /// Full coordinate-ascent refreshes performed so far (fit() counts one).
  std::size_t refreshes() const { return refreshes_; }

  /// Normalized per-group kernel weights (sums to 1): the fraction of the
  /// model's explained variance attributable to each parameter.
  std::vector<double> relevance() const;

 private:
  double kernel(const double* a, const double* b) const;
  /// Factorize the current kernel over stored data into chol_/alpha_/lml_;
  /// false if the kernel matrix went indefinite.
  bool refit();
  /// Full hyperparameter search (scaler, lengthscales, weight ascent,
  /// noise); false if no configuration factorizes.
  bool full_fit();
  /// Rank-1 extension of the factor by the newly appended row.
  bool extend_factor();
  void predict_range(const linalg::Matrix& candidates, std::size_t begin, std::size_t end,
                     std::span<GpPrediction> out) const;

  Options options_;
  bool fitted_ = false;
  double lml_ = 0.0;
  double lml_per_point_at_refresh_ = 0.0;
  double noise_ = 0.1;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::size_t since_refresh_ = 0;
  std::size_t refreshes_ = 0;
  TargetScaler scaler_;
  std::vector<double> x_;      // flat row-major features, n_ × dim_
  std::vector<double> y_raw_;  // raw targets (refreshes re-normalize)
  std::vector<double> y_;      // targets under the frozen scaler_
  std::vector<double> lengthscales_;  // per feature
  std::vector<double> weights_;       // per feature
  std::vector<std::size_t> owners_;   // feature -> group
  std::size_t groups_ = 0;
  linalg::Matrix chol_;
  linalg::Vector alpha_;
};

}  // namespace stune::model
