// Additive Gaussian process (Duvenaud, Nickisch & Rasmussen, NIPS'11) —
// the paper's §V-A candidate for *interpretable* tuning models: "decomposes
// the model into a sum of low-dimensional functions, each depending on only
// a subset of the input variables, potentially enabling the interpretation
// of input interactions and their influence on the variance of the overall
// model."
//
// Kernel: k(x, x') = sum_d  w_d * Matern52(|x_d - x'_d| / ell_d).
// Per-dimension weights w_d are fit by coordinate ascent on the log
// marginal likelihood; the normalized weights are the model's *relevance*
// vector — which configuration parameters the runtime actually responds to.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "model/dataset.hpp"
#include "model/gp.hpp"

namespace stune::model {

class AdditiveGaussianProcess {
 public:
  struct Options {
    /// Noise levels tried by marginal likelihood (as a fraction of target
    /// variance). Real tuning data has a large non-additive component, so
    /// the grid must reach high values or the model interpolates noise.
    std::vector<double> noise_grid = {0.01, 0.05, 0.15, 0.4, 1.0};
    /// Multiplier grid tried per dimension weight during coordinate ascent.
    std::vector<double> weight_grid = {0.0, 0.25, 1.0, 3.0};
    std::size_t sweeps = 2;
  };

  AdditiveGaussianProcess() : AdditiveGaussianProcess(Options{}) {}
  explicit AdditiveGaussianProcess(Options options) : options_(std::move(options)) {}

  /// `feature_owners` (optional) maps each feature to a semantic group
  /// (e.g. one-hot features of one categorical parameter); relevance() is
  /// reported per group. Empty = one group per feature.
  void fit(const Dataset& data, std::vector<std::size_t> feature_owners = {});

  GpPrediction predict(const std::vector<double>& x) const;
  bool fitted() const { return fitted_; }
  double log_marginal_likelihood() const { return lml_; }

  /// Normalized per-group kernel weights (sums to 1): the fraction of the
  /// model's explained variance attributable to each parameter.
  std::vector<double> relevance() const;

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;
  /// LML of the current weights; false if the kernel matrix went indefinite.
  bool refit(const std::vector<double>& y, double* lml);

  Options options_;
  bool fitted_ = false;
  double lml_ = 0.0;
  double noise_ = 0.1;
  TargetScaler scaler_;
  std::vector<std::vector<double>> x_;
  std::vector<double> lengthscales_;  // per feature
  std::vector<double> weights_;       // per feature
  std::vector<std::size_t> owners_;   // feature -> group
  std::size_t groups_ = 0;
  linalg::Matrix chol_;
  linalg::Vector alpha_;
};

}  // namespace stune::model
