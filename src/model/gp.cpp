#include "model/gp.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace stune::model {

namespace {

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double matern52(double r, double lengthscale) {
  const double s = std::sqrt(5.0) * r / lengthscale;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

double standard_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double standard_normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

}  // namespace

double GaussianProcess::kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  return signal_var_ * matern52(std::sqrt(sq_dist(a, b)), lengthscale_);
}

void GaussianProcess::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("GaussianProcess: empty dataset");
  x_ = data.features();
  scaler_ = TargetScaler::fit(data.targets());
  std::vector<double> y(data.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = scaler_.to_normalized(data.target(i));
  signal_var_ = 1.0;  // targets are normalized

  // Median pairwise distance heuristic (subsampled for large n).
  std::vector<double> dists;
  const std::size_t n = x_.size();
  const std::size_t stride = n > 64 ? n / 64 : 1;
  for (std::size_t i = 0; i < n; i += stride) {
    for (std::size_t j = i + stride; j < n; j += stride) {
      dists.push_back(std::sqrt(sq_dist(x_[i], x_[j])));
    }
  }
  double median = 1.0;
  if (!dists.empty()) {
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(dists.size() / 2),
                     dists.end());
    median = std::max(1e-6, dists[dists.size() / 2]);
  }

  double best_lml = -std::numeric_limits<double>::infinity();
  linalg::Matrix best_chol;
  linalg::Vector best_alpha;
  double best_ls = median;

  for (const double mult : options_.lengthscale_grid) {
    lengthscale_ = median * mult;
    linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double v = kernel(x_[i], x_[j]);
        k(i, j) = v;
        k(j, i) = v;
      }
      k(i, i) += options_.noise * signal_var_ + 1e-8;
    }
    linalg::Matrix l;
    try {
      l = linalg::cholesky(k);
    } catch (const std::runtime_error&) {
      continue;  // numerically bad lengthscale; try the next one
    }
    const linalg::Vector alpha = linalg::cholesky_solve(l, y);
    double lml = -0.5 * linalg::dot(y, alpha);
    for (std::size_t i = 0; i < n; ++i) lml -= std::log(l(i, i));
    lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
    if (lml > best_lml) {
      best_lml = lml;
      best_chol = l;
      best_alpha = alpha;
      best_ls = lengthscale_;
    }
  }
  if (!std::isfinite(best_lml)) {
    throw std::runtime_error("GaussianProcess: no viable lengthscale (degenerate data)");
  }
  lengthscale_ = best_ls;
  lml_ = best_lml;
  chol_ = std::move(best_chol);
  alpha_ = std::move(best_alpha);
  fitted_ = true;
}

GpPrediction GaussianProcess::predict(const std::vector<double>& x) const {
  if (!fitted_) throw std::logic_error("GaussianProcess: predict before fit");
  const std::size_t n = x_.size();
  linalg::Vector k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(x, x_[i]);
  const double mean_z = linalg::dot(k_star, alpha_);
  const linalg::Vector v = linalg::solve_lower(chol_, k_star);
  const double var_z =
      std::max(1e-10, kernel(x, x) + options_.noise * signal_var_ - linalg::dot(v, v));
  GpPrediction p;
  p.mean = scaler_.to_raw(mean_z);
  p.variance = var_z * scaler_.stddev * scaler_.stddev;
  return p;
}

double expected_improvement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(variance, 1e-18));
  const double z = (best - mean) / sigma;
  return (best - mean) * standard_normal_cdf(z) + sigma * standard_normal_pdf(z);
}

}  // namespace stune::model
