#include "model/gp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <limits>
#include <numbers>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/thread_pool.hpp"

namespace stune::model {

namespace {

/// acc + a·b with pinned contraction: one hardware fused multiply-add when
/// this TU is built with FMA support, a plainly rounded multiply + add
/// otherwise. Implicit contraction lets the optimizer fuse per generated
/// loop version (vectorized body vs scalar epilogue), which would make a
/// candidate's prediction depend on how many candidates share its block.
/// Every loop below whose trip count is the candidate-block width goes
/// through this helper (or contains no fusable pattern), which is what makes
/// scalar predict() bitwise identical to predict_batch() by construction.
inline double fma_acc(double acc, double a, double b) {
#ifdef __FMA__
  return __builtin_fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// acc - a·b with the same pinned-contraction contract as fma_acc.
inline double fnma_acc(double acc, double a, double b) {
#ifdef __FMA__
  return __builtin_fma(-a, b, acc);
#else
  return acc - a * b;
#endif
}

double euclidean(const double* a, const double* b, std::size_t d) {
  double acc = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

/// exp(x) for non-positive x as straight-line arithmetic — no libm call, so
/// the compiler can vectorize kernel-evaluation loops over it (a libm call
/// pins the whole loop to scalar code). Cody–Waite argument reduction plus a
/// degree-13 Horner in 1/k!; within ~2 ulp of std::exp over [-708, 0] and
/// exactly 1.0 at 0 (each Horner step is p·0 + 1/k!). The argument is
/// clamped to [-708, 0] — std::exp would keep descending into subnormals
/// until -745, but a correlation of 3e-308 and one of 1e-320 are equally
/// dead zeros for the kernel, and the clamp keeps the function a straight
/// max/floor/fma/bit-op chain with no branch for the vectorizer to trip on.
/// Every Matérn evaluation (training and prediction) goes through this one
/// definition, so the two paths stay mutually consistent.
inline double exp_nonpositive(double x) {
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  x = std::max(x, -708.0);
  const double kd = std::floor(fma_acc(0.5, x, kLog2e));
  const double r = fnma_acc(fnma_acc(x, kd, kLn2Hi), kd, kLn2Lo);
  double p = 1.0 / 6227020800.0;  // 1/13!
  p = fma_acc(1.0 / 479001600.0, p, r);
  p = fma_acc(1.0 / 39916800.0, p, r);
  p = fma_acc(1.0 / 3628800.0, p, r);
  p = fma_acc(1.0 / 362880.0, p, r);
  p = fma_acc(1.0 / 40320.0, p, r);
  p = fma_acc(1.0 / 5040.0, p, r);
  p = fma_acc(1.0 / 720.0, p, r);
  p = fma_acc(1.0 / 120.0, p, r);
  p = fma_acc(1.0 / 24.0, p, r);
  p = fma_acc(1.0 / 6.0, p, r);
  p = fma_acc(0.5, p, r);
  p = fma_acc(1.0, p, r);
  p = fma_acc(1.0, p, r);
  // 2^k via the exponent field; after the clamp the biased exponent 1023+k
  // stays in [1, 1023]. kd is extracted through the 1.5·2^52 magic constant
  // instead of a double→int64 cast because AVX2 has no packed conversion —
  // the cast would force the whole kernel loop scalar. Adding the magic puts
  // the integer kd into the low mantissa bits (mod 2^11 is enough for the
  // exponent field), and the remaining ops are plain integer add/and/shift
  // the vectorizer handles.
  constexpr double kMagic = 6755399441055744.0;  // 1.5·2^52
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(kd + kMagic);
  const double two_k = std::bit_cast<double>(((bits + 1023) & 0x7FFULL) << 52);
  return p * two_k;
}

double matern52(double r, double lengthscale) {
  const double s = std::sqrt(5.0) * r / lengthscale;
  return (1.0 + s + s * s / 3.0) * exp_nonpositive(-s);
}

double standard_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double standard_normal_cdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

double log_marginal(const linalg::Matrix& l, const std::vector<double>& y,
                    const linalg::Vector& alpha) {
  double lml = -0.5 * linalg::dot(y, alpha);
  for (std::size_t i = 0; i < l.rows(); ++i) lml -= std::log(l(i, i));
  lml -= 0.5 * static_cast<double>(l.rows()) * std::log(2.0 * std::numbers::pi);
  return lml;
}

}  // namespace

void GaussianProcess::append_point(std::span<const double> x, double y) {
  if (n_ == 0) {
    dim_ = x.size();
  } else if (x.size() != dim_) {
    throw std::invalid_argument("GaussianProcess: feature dimension mismatch");
  }
  // Extend the cached distance matrix from n×n to (n+1)×(n+1): re-stride the
  // existing rows, then one O(n·d) pass for the new row and column.
  const std::size_t n = n_;
  std::vector<double> grown((n + 1) * (n + 1), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(dist_.data() + i * n, dist_.data() + i * n + n, grown.data() + i * (n + 1));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double r = euclidean(x.data(), x_.data() + i * dim_, dim_);
    grown[n * (n + 1) + i] = r;
    grown[i * (n + 1) + n] = r;
  }
  dist_ = std::move(grown);
  x_.insert(x_.end(), x.begin(), x.end());
  y_raw_.push_back(y);
  ++n_;
}

bool GaussianProcess::refresh_hyperparameters() {
  const std::size_t n = n_;
  scaler_ = TargetScaler::fit(y_raw_);
  y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_[i] = scaler_.to_normalized(y_raw_[i]);
  signal_var_ = 1.0;  // targets are normalized

  // Median pairwise distance heuristic (subsampled for large n), read
  // straight from the distance cache.
  std::vector<double> dists;
  const std::size_t stride = n > 64 ? n / 64 : 1;
  for (std::size_t i = 0; i < n; i += stride) {
    for (std::size_t j = i + stride; j < n; j += stride) dists.push_back(dist_[i * n + j]);
  }
  double median = 1.0;
  if (!dists.empty()) {
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(dists.size() / 2),
                     dists.end());
    median = std::max(1e-6, dists[dists.size() / 2]);
  }

  double best_lml = -std::numeric_limits<double>::infinity();
  linalg::Matrix best_chol;
  linalg::Vector best_alpha;
  double best_ls = median;

  linalg::Matrix k(n, n);
  for (const double mult : options_.lengthscale_grid) {
    // The grid entry is an explicit parameter of the kernel build — member
    // state is only written once the winner is known, so entries could be
    // scored concurrently and kernel() can never read a half-updated grid.
    const double ls = median * mult;
    for (std::size_t i = 0; i < n; ++i) {
      double* ki = k.row_ptr(i);
      const double* di = dist_.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) ki[j] = signal_var_ * matern52(di[j], ls);
      ki[i] += options_.noise * signal_var_ + 1e-8;
    }
    linalg::Matrix l;
    try {
      l = linalg::cholesky(k);
    } catch (const std::runtime_error&) {
      continue;  // numerically bad lengthscale; try the next one
    }
    linalg::Vector alpha = linalg::cholesky_solve(l, y_);
    const double lml = log_marginal(l, y_, alpha);
    if (lml > best_lml) {
      best_lml = lml;
      best_chol = std::move(l);
      best_alpha = std::move(alpha);
      best_ls = ls;
    }
  }
  if (!std::isfinite(best_lml)) return false;
  lengthscale_ = best_ls;
  lml_ = best_lml;
  chol_ = std::move(best_chol);
  alpha_ = std::move(best_alpha);
  since_refresh_ = 0;
  lml_per_point_at_refresh_ = lml_ / static_cast<double>(n);
  ++refreshes_;
  return true;
}

bool GaussianProcess::rebuild_factor() {
  const std::size_t n = n_;
  y_.resize(n);
  for (std::size_t i = 0; i < n; ++i) y_[i] = scaler_.to_normalized(y_raw_[i]);
  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double* ki = k.row_ptr(i);
    const double* di = dist_.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) ki[j] = signal_var_ * matern52(di[j], lengthscale_);
    ki[i] += options_.noise * signal_var_ + 1e-8;
  }
  linalg::Matrix l;
  try {
    l = linalg::cholesky(k);
  } catch (const std::runtime_error&) {
    return false;
  }
  chol_ = std::move(l);
  alpha_ = linalg::cholesky_solve(chol_, y_);
  lml_ = log_marginal(chol_, y_, alpha_);
  return true;
}

bool GaussianProcess::extend_factor() {
  const std::size_t n = n_;  // already includes the appended point
  y_.push_back(scaler_.to_normalized(y_raw_.back()));
  linalg::Vector row(n);
  const double* dlast = dist_.data() + (n - 1) * n;
  for (std::size_t i = 0; i + 1 < n; ++i) row[i] = signal_var_ * matern52(dlast[i], lengthscale_);
  row[n - 1] = signal_var_ + options_.noise * signal_var_ + 1e-8;
  linalg::Matrix grown;
  try {
    grown = linalg::cholesky_append(chol_, row);
  } catch (const std::runtime_error&) {
    return false;
  }
  chol_ = std::move(grown);
  alpha_ = linalg::cholesky_solve(chol_, y_);
  lml_ = log_marginal(chol_, y_, alpha_);
  return true;
}

void GaussianProcess::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("GaussianProcess: empty dataset");
  n_ = data.size();
  dim_ = data.dim();
  x_ = data.feature_data();  // one flat copy — no per-row allocations
  y_raw_ = data.targets();
  y_.clear();
  since_refresh_ = 0;
  refreshes_ = 0;
  dist_.assign(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double r = euclidean(x_.data() + i * dim_, x_.data() + j * dim_, dim_);
      dist_[i * n_ + j] = r;
      dist_[j * n_ + i] = r;
    }
  }
  fitted_ = refresh_hyperparameters();
  if (!fitted_) {
    throw std::runtime_error("GaussianProcess: no viable lengthscale (degenerate data)");
  }
}

void GaussianProcess::observe(std::span<const double> x, double y) {
  append_point(x, y);
  ++since_refresh_;
  if (fitted_ && since_refresh_ < options_.refresh_interval) {
    const bool ok = options_.incremental ? extend_factor() : rebuild_factor();
    // The factor can be numerically sound yet no longer explain the data;
    // a large per-point LML drop forces an early hyperparameter refresh.
    if (ok && lml_ / static_cast<double>(n_) >=
                  lml_per_point_at_refresh_ - options_.lml_drop_per_point) {
      return;
    }
  }
  fitted_ = refresh_hyperparameters();
}

void GaussianProcess::predict_range(const linalg::Matrix& candidates, std::size_t begin,
                                    std::size_t end, std::span<GpPrediction> out) const {
  const std::size_t n = n_;
  if (end == begin) return;
  // Candidates are processed in column blocks so the k* block and the
  // multi-RHS solve's working set stay cache-resident; every per-candidate
  // operation sequence is independent of the block width, so any blocking
  // (including the 1-wide block scalar predict() takes) is bitwise
  // identical.
  constexpr std::size_t kPredictBlock = 64;
  // Squared training-row norms for the Gram-trick distances:
  // ||x_i - c_j||² = ||x_i||² + ||c_j||² - 2 x_i·c_j, which turns the
  // O(n·m·d) pairwise pass into a j-contiguous rank-d update.
  std::vector<double> xsq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = x_.data() + i * dim_;
    double acc = 0.0;
    for (std::size_t k = 0; k < dim_; ++k) acc += xi[k] * xi[k];
    xsq[i] = acc;
  }
  const double inv_ls = 1.0 / lengthscale_;
  // matern52(0) is exactly 1, so k(x, x) is exactly signal_var_ — no
  // per-candidate self-kernel evaluation.
  const double prior = signal_var_ + options_.noise * signal_var_;
  std::vector<double> ct(dim_ * kPredictBlock);  // block staged transposed
  std::vector<double> csq(kPredictBlock);
  for (std::size_t b0 = begin; b0 < end; b0 += kPredictBlock) {
    const std::size_t w = std::min(end - b0, kPredictBlock);
    for (std::size_t j = 0; j < w; ++j) {
      const double* cj = candidates.row_ptr(b0 + j);
      double acc = 0.0;
      for (std::size_t k = 0; k < dim_; ++k) {
        ct[k * w + j] = cj[k];
        acc = fma_acc(acc, cj[k], cj[k]);
      }
      csq[j] = acc;
    }
    // The k* block for these candidates: squared distances via the staged
    // cross products, then one fused sqrt per entry (s = sqrt(5·q)/ell).
    linalg::Matrix kstar(n, w);
    for (std::size_t i = 0; i < n; ++i) {
      const double* xi = x_.data() + i * dim_;
      double* __restrict ki = kstar.row_ptr(i);
      for (std::size_t j = 0; j < w; ++j) ki[j] = xsq[i] + csq[j];
      for (std::size_t k = 0; k < dim_; ++k) {
        const double m2 = -2.0 * xi[k];
        const double* __restrict ctk = ct.data() + k * w;
        for (std::size_t j = 0; j < w; ++j) ki[j] = fma_acc(ki[j], m2, ctk[j]);
      }
      for (std::size_t j = 0; j < w; ++j) {
        const double q = std::max(ki[j], 0.0);  // cancellation guard
        const double s = std::sqrt(5.0 * q) * inv_ls;
        ki[j] = signal_var_ * ((1.0 + s + s * s / 3.0) * exp_nonpositive(-s));
      }
    }
    // All means in one matrix-vector product (the i-ascending accumulation
    // matches the scalar dot(k_star, alpha) bitwise), all variances via one
    // multi-RHS triangular solve.
    const linalg::Vector mean_z = kstar.matvec_transposed(alpha_);
    const linalg::Matrix v = linalg::solve_lower(chol_, kstar);
    std::vector<double> vtv(w, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double* vi = v.row_ptr(i);
      for (std::size_t j = 0; j < w; ++j) vtv[j] = fma_acc(vtv[j], vi[j], vi[j]);
    }
    for (std::size_t j = 0; j < w; ++j) {
      const double var_z = std::max(1e-10, prior - vtv[j]);
      // to_raw is z·stddev + mean — spelled via fma_acc so the un-scaling
      // also rounds identically at every block width.
      out[b0 + j].mean = fma_acc(scaler_.mean, mean_z[j], scaler_.stddev);
      out[b0 + j].variance = var_z * scaler_.stddev * scaler_.stddev;
    }
  }
}

GpPrediction GaussianProcess::predict(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("GaussianProcess: predict before fit");
  if (x.size() != dim_) {
    throw std::invalid_argument("GaussianProcess: feature dimension mismatch");
  }
  linalg::Matrix c(1, dim_);
  std::copy(x.begin(), x.end(), c.row_ptr(0));
  GpPrediction out;
  predict_range(c, 0, 1, std::span<GpPrediction>(&out, 1));
  return out;
}

std::vector<GpPrediction> GaussianProcess::predict_batch(const linalg::Matrix& candidates,
                                                         simcore::ThreadPool* pool) const {
  if (!fitted_) throw std::logic_error("GaussianProcess: predict before fit");
  STUNE_CHECK_EQ(candidates.cols(), dim_);
  const std::size_t m = candidates.rows();
  std::vector<GpPrediction> out(m);
  if (pool == nullptr || pool->size() <= 1 || m < 64) {
    predict_range(candidates, 0, m, out);
    return out;
  }
  // Contiguous shards, each worker writing a disjoint output slice: the
  // per-candidate arithmetic never depends on shard boundaries, so jobs=1
  // and jobs=N are bitwise identical.
  const std::size_t shard = (m + pool->size() - 1) / pool->size();
  std::vector<std::future<void>> futures;
  futures.reserve(pool->size());
  const std::span<GpPrediction> slice(out);
  for (std::size_t begin = 0; begin < m; begin += shard) {
    const std::size_t end = std::min(m, begin + shard);
    futures.push_back(
        pool->submit([this, &candidates, begin, end, slice] {
          predict_range(candidates, begin, end, slice);
        }));
  }
  // Join every future before rethrowing so no task still references the
  // stack-owned output when an exception unwinds.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  return out;
}

double expected_improvement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(variance, 1e-18));
  const double z = (best - mean) / sigma;
  return (best - mean) * standard_normal_cdf(z) + sigma * standard_normal_pdf(z);
}

}  // namespace stune::model
