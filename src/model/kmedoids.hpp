// k-medoids (PAM-style) clustering — AROMA clusters executed jobs by their
// resource signatures before fitting per-cluster models (paper §II-B, §V-B).
#pragma once

#include <cstddef>
#include <vector>

#include "simcore/rng.hpp"

namespace stune::model {

struct KMedoidsResult {
  std::vector<std::size_t> medoids;      // indices into the input points
  std::vector<std::size_t> assignment;   // point -> cluster index
  double total_cost = 0.0;               // sum of distances to medoids
};

/// Cluster `points` into k groups under Euclidean distance. Deterministic
/// given the rng. Throws std::invalid_argument for k == 0 or k > points.
KMedoidsResult kmedoids(const std::vector<std::vector<double>>& points, std::size_t k,
                        simcore::Rng rng, std::size_t max_iters = 50);

double euclidean(const std::vector<double>& a, const std::vector<double>& b);
double cosine_similarity(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace stune::model
