#include "model/kmedoids.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace stune::model {

double euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double cosine_similarity(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

namespace {

void assign_points(const std::vector<std::vector<double>>& points,
                   const std::vector<std::size_t>& medoids, std::vector<std::size_t>* assignment,
                   double* cost) {
  *cost = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < medoids.size(); ++c) {
      const double d = euclidean(points[i], points[medoids[c]]);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    (*assignment)[i] = best_c;
    *cost += best;
  }
}

}  // namespace

KMedoidsResult kmedoids(const std::vector<std::vector<double>>& points, std::size_t k,
                        simcore::Rng rng, std::size_t max_iters) {
  if (k == 0 || k > points.size()) {
    throw std::invalid_argument("kmedoids: k must be in [1, points]");
  }
  KMedoidsResult r;
  // Initialize with distinct random medoids.
  std::vector<std::size_t> pool(points.size());
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  rng.shuffle(pool);
  r.medoids.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(k));
  r.assignment.resize(points.size());
  assign_points(points, r.medoids, &r.assignment, &r.total_cost);

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    bool improved = false;
    // PAM swap phase: try replacing each medoid with each non-medoid.
    for (std::size_t c = 0; c < k && !improved; ++c) {
      for (std::size_t candidate = 0; candidate < points.size(); ++candidate) {
        if (std::find(r.medoids.begin(), r.medoids.end(), candidate) != r.medoids.end()) continue;
        std::vector<std::size_t> trial = r.medoids;
        trial[c] = candidate;
        std::vector<std::size_t> assign(points.size());
        double cost = 0.0;
        assign_points(points, trial, &assign, &cost);
        if (cost + 1e-12 < r.total_cost) {
          r.medoids = std::move(trial);
          r.assignment = std::move(assign);
          r.total_cost = cost;
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }
  return r;
}

}  // namespace stune::model
