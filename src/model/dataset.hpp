// Training data shared by the performance models.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace stune::model {

/// A supervised regression dataset: rows of features plus a target.
class Dataset {
 public:
  void add(std::vector<double> x, double y);
  void reserve(std::size_t n);

  std::size_t size() const { return y_.size(); }
  bool empty() const { return y_.empty(); }
  std::size_t dim() const { return x_.empty() ? 0 : x_.front().size(); }

  const std::vector<std::vector<double>>& features() const { return x_; }
  const std::vector<double>& targets() const { return y_; }
  const std::vector<double>& row(std::size_t i) const { return x_[i]; }
  double target(std::size_t i) const { return y_[i]; }

  /// Dense matrix view (copies), optionally with a leading 1-bias column.
  linalg::Matrix design_matrix(bool add_bias) const;

 private:
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;
};

/// z-score normalizer for targets; models fit on normalized targets and
/// denormalize predictions.
struct TargetScaler {
  double mean = 0.0;
  double stddev = 1.0;

  static TargetScaler fit(const std::vector<double>& y);
  double to_normalized(double y) const { return (y - mean) / stddev; }
  double to_raw(double z) const { return z * stddev + mean; }
};

}  // namespace stune::model
