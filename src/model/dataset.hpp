// Training data shared by the performance models.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace stune::model {

/// A supervised regression dataset: rows of features plus a target. Features
/// live in one flat row-major buffer — no per-row allocations, and models
/// that scan all rows (kernels, tree splits) walk contiguous memory.
class Dataset {
 public:
  void add(std::span<const double> x, double y);
  void add(std::initializer_list<double> x, double y) {
    add(std::span<const double>(x.begin(), x.size()), y);
  }
  void reserve(std::size_t n);

  std::size_t size() const { return y_.size(); }
  bool empty() const { return y_.empty(); }
  std::size_t dim() const { return dim_; }

  /// The flat row-major feature buffer (size() * dim() doubles).
  const std::vector<double>& feature_data() const { return x_; }
  const std::vector<double>& targets() const { return y_; }
  std::span<const double> row(std::size_t i) const { return {x_.data() + i * dim_, dim_}; }
  double target(std::size_t i) const { return y_[i]; }

  /// Dense matrix view (copies), optionally with a leading 1-bias column.
  linalg::Matrix design_matrix(bool add_bias) const;

 private:
  std::size_t dim_ = 0;
  std::vector<double> x_;  // flat row-major, size() * dim_
  std::vector<double> y_;
};

/// z-score normalizer for targets; models fit on normalized targets and
/// denormalize predictions.
struct TargetScaler {
  double mean = 0.0;
  double stddev = 1.0;

  static TargetScaler fit(const std::vector<double>& y);
  double to_normalized(double y) const { return (y - mean) / stddev; }
  double to_raw(double z) const { return z * stddev + mean; }
};

}  // namespace stune::model
