#include "model/linear.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace stune::model {

void RidgeRegression::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("RidgeRegression: empty dataset");
  const linalg::Matrix x = data.design_matrix(/*add_bias=*/true);
  weights_ = linalg::ridge_solve(x, data.targets(), lambda_);
}

double RidgeRegression::predict(const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("RidgeRegression: predict before fit");
  if (x.size() + 1 != weights_.size()) {
    throw std::invalid_argument("RidgeRegression: feature dimension mismatch");
  }
  double y = weights_[0];
  for (std::size_t i = 0; i < x.size(); ++i) y += weights_[i + 1] * x[i];
  return y;
}

std::vector<double> ErnestModel::basis(double data_size, double machines) {
  const double m = std::max(1.0, machines);
  return {1.0, data_size / m, std::log(m), m};
}

void ErnestModel::add_observation(double data_size, double machines, double runtime) {
  data_.add(basis(data_size, machines), runtime);
}

void ErnestModel::fit() {
  if (data_.empty()) throw std::logic_error("ErnestModel: no observations");
  const linalg::Matrix x = data_.design_matrix(/*add_bias=*/false);
  weights_ = linalg::nnls(x, data_.targets());
}

double ErnestModel::predict(double data_size, double machines) const {
  if (!fitted()) throw std::logic_error("ErnestModel: predict before fit");
  const auto b = basis(data_size, machines);
  double y = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) y += weights_[i] * b[i];
  return y;
}

}  // namespace stune::model
