#include "model/additive_gp.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numbers>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "simcore/rng.hpp"

namespace stune::model {

namespace {

double matern52(double r) {
  const double s = std::sqrt(5.0) * r;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

double log_marginal(const linalg::Matrix& l, const std::vector<double>& y,
                    const linalg::Vector& alpha) {
  double value = -0.5 * linalg::dot(y, alpha);
  for (std::size_t i = 0; i < l.rows(); ++i) value -= std::log(l(i, i));
  value -= 0.5 * static_cast<double>(l.rows()) * std::log(2.0 * std::numbers::pi);
  return value;
}

}  // namespace

double AdditiveGaussianProcess::kernel(const double* a, const double* b) const {
  double acc = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    if (weights_[d] <= 0.0) continue;
    acc += weights_[d] * matern52(std::abs(a[d] - b[d]) / lengthscales_[d]);
  }
  return acc;
}

bool AdditiveGaussianProcess::refit() {
  linalg::Matrix k(n_, n_);
  const double noise = noise_ + 1e-8;
  for (std::size_t i = 0; i < n_; ++i) {
    const double* xi = x_.data() + i * dim_;
    for (std::size_t j = i; j < n_; ++j) {
      const double v = kernel(xi, x_.data() + j * dim_);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise;
  }
  try {
    chol_ = linalg::cholesky(k);
  } catch (const std::runtime_error&) {
    return false;
  }
  alpha_ = linalg::cholesky_solve(chol_, y_);
  lml_ = log_marginal(chol_, y_, alpha_);
  return true;
}

bool AdditiveGaussianProcess::extend_factor() {
  y_.push_back(scaler_.to_normalized(y_raw_.back()));
  linalg::Vector row(n_);
  const double* xn = x_.data() + (n_ - 1) * dim_;
  for (std::size_t i = 0; i + 1 < n_; ++i) row[i] = kernel(xn, x_.data() + i * dim_);
  row[n_ - 1] = kernel(xn, xn) + noise_ + 1e-8;
  try {
    chol_ = linalg::cholesky_append(chol_, row);
  } catch (const std::runtime_error&) {
    return false;
  }
  alpha_ = linalg::cholesky_solve(chol_, y_);
  lml_ = log_marginal(chol_, y_, alpha_);
  return true;
}

bool AdditiveGaussianProcess::full_fit() {
  if (owners_.size() != dim_) {
    owners_.resize(dim_);
    std::iota(owners_.begin(), owners_.end(), std::size_t{0});
    groups_ = dim_;
  }

  scaler_ = TargetScaler::fit(y_raw_);
  y_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) y_[i] = scaler_.to_normalized(y_raw_[i]);

  // Per-dimension lengthscales from the median absolute difference.
  lengthscales_.assign(dim_, 1.0);
  for (std::size_t d = 0; d < dim_; ++d) {
    std::vector<double> diffs;
    const std::size_t stride = n_ > 48 ? n_ / 48 : 1;
    for (std::size_t i = 0; i < n_; i += stride) {
      for (std::size_t j = i + stride; j < n_; j += stride) {
        diffs.push_back(std::abs(x_[i * dim_ + d] - x_[j * dim_ + d]));
      }
    }
    double median = 0.3;
    if (!diffs.empty()) {
      std::nth_element(diffs.begin(), diffs.begin() + static_cast<std::ptrdiff_t>(diffs.size() / 2),
                       diffs.end());
      median = std::max(0.05, diffs[diffs.size() / 2]);
    }
    lengthscales_[d] = median;
  }

  // Coordinate ascent on the LML over the *allocation* of a unit total
  // kernel variance across dimensions: trying a new raw weight for one
  // dimension always renormalizes the vector to sum 1, so the search
  // compares relative importances rather than total signal variance
  // (targets are normalized to unit variance already).
  const double base = 1.0 / static_cast<double>(dim_);
  std::vector<double> raw(dim_, base);
  auto normalized = [&](const std::vector<double>& w) {
    double total = 0.0;
    for (const double v : w) total += v;
    std::vector<double> out(w);
    if (total <= 0.0) {
      std::fill(out.begin(), out.end(), base);
    } else {
      for (auto& v : out) v /= total;
    }
    return out;
  };

  weights_ = normalized(raw);
  double best_lml = -std::numeric_limits<double>::infinity();
  // Pick the noise level by marginal likelihood under the current weights;
  // re-checked after the sweeps (less additive structure claimed means more
  // residual noise).
  auto tune_noise = [&] {
    double best = -std::numeric_limits<double>::infinity();
    double best_noise = options_.noise_grid.front();
    for (const double candidate : options_.noise_grid) {
      noise_ = candidate;
      if (refit() && lml_ > best) {
        best = lml_;
        best_noise = candidate;
      }
    }
    noise_ = best_noise;
    best_lml = std::max(best_lml, best);
  };
  tune_noise();
  for (std::size_t sweep = 0; sweep < options_.sweeps; ++sweep) {
    for (std::size_t d = 0; d < dim_; ++d) {
      const double saved = raw[d];
      double best_raw = saved;
      for (const double mult : options_.weight_grid) {
        raw[d] = base * mult;
        if (simcore::bits_equal(raw[d], saved)) continue;
        weights_ = normalized(raw);
        if (refit() && lml_ > best_lml) {
          best_lml = lml_;
          best_raw = raw[d];
        }
      }
      raw[d] = best_raw;
    }
  }
  // Leave the state consistent with the final weights.
  weights_ = normalized(raw);
  tune_noise();
  if (!refit()) return false;
  since_refresh_ = 0;
  lml_per_point_at_refresh_ = lml_ / static_cast<double>(n_);
  ++refreshes_;
  return true;
}

void AdditiveGaussianProcess::fit(const Dataset& data, std::vector<std::size_t> feature_owners) {
  if (data.empty()) throw std::invalid_argument("AdditiveGaussianProcess: empty dataset");
  if (!feature_owners.empty() && feature_owners.size() != data.dim()) {
    throw std::invalid_argument("AdditiveGaussianProcess: owners size mismatch");
  }
  x_ = data.feature_data();
  y_raw_ = data.targets();
  n_ = data.size();
  dim_ = data.dim();
  if (feature_owners.empty()) {
    feature_owners.resize(dim_);
    std::iota(feature_owners.begin(), feature_owners.end(), std::size_t{0});
  }
  owners_ = std::move(feature_owners);
  groups_ = owners_.empty() ? 0 : *std::max_element(owners_.begin(), owners_.end()) + 1;
  refreshes_ = 0;
  fitted_ = full_fit();
  if (!fitted_) throw std::runtime_error("AdditiveGaussianProcess: degenerate final kernel");
}

void AdditiveGaussianProcess::observe(std::span<const double> x, double y) {
  if (n_ > 0 && x.size() != dim_) {
    throw std::invalid_argument("AdditiveGaussianProcess: inconsistent feature dimension");
  }
  if (n_ == 0) dim_ = x.size();
  x_.insert(x_.end(), x.begin(), x.end());
  y_raw_.push_back(y);
  ++n_;
  ++since_refresh_;
  if (fitted_ && since_refresh_ < options_.refresh_interval) {
    bool ok = false;
    if (options_.incremental) {
      ok = extend_factor();
    } else {
      y_.push_back(scaler_.to_normalized(y));
      ok = refit();
    }
    if (ok &&
        lml_ / static_cast<double>(n_) >= lml_per_point_at_refresh_ - options_.lml_drop_per_point) {
      return;
    }
  }
  fitted_ = full_fit();
}

void AdditiveGaussianProcess::predict_range(const linalg::Matrix& candidates, std::size_t begin,
                                            std::size_t end, std::span<GpPrediction> out) const {
  const std::size_t m = end - begin;
  linalg::Matrix kstar(n_, m);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* xi = x_.data() + i * dim_;
    double* ki = kstar.row_ptr(i);
    for (std::size_t j = 0; j < m; ++j) ki[j] = kernel(xi, candidates.row_ptr(begin + j));
  }
  const linalg::Vector mean_z = kstar.matvec_transposed(alpha_);
  const linalg::Matrix v = linalg::solve_lower(chol_, kstar);
  for (std::size_t j = 0; j < m; ++j) {
    double vtv = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const double vij = v(i, j);
      vtv += vij * vij;
    }
    const double* c = candidates.row_ptr(begin + j);
    const double var_z = std::max(1e-10, kernel(c, c) + noise_ - vtv);
    out[j].mean = scaler_.to_raw(mean_z[j]);
    out[j].variance = var_z * scaler_.stddev * scaler_.stddev;
  }
}

GpPrediction AdditiveGaussianProcess::predict(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("AdditiveGaussianProcess: predict before fit");
  if (x.size() != dim_) {
    throw std::invalid_argument("AdditiveGaussianProcess: inconsistent feature dimension");
  }
  linalg::Matrix c(1, dim_);
  std::copy(x.begin(), x.end(), c.row_ptr(0));
  GpPrediction p;
  predict_range(c, 0, 1, {&p, 1});
  return p;
}

std::vector<GpPrediction> AdditiveGaussianProcess::predict_batch(
    const linalg::Matrix& candidates) const {
  if (!fitted_) throw std::logic_error("AdditiveGaussianProcess: predict before fit");
  if (candidates.cols() != dim_) {
    throw std::invalid_argument("AdditiveGaussianProcess: inconsistent feature dimension");
  }
  std::vector<GpPrediction> out(candidates.rows());
  if (!out.empty()) predict_range(candidates, 0, candidates.rows(), out);
  return out;
}

std::vector<double> AdditiveGaussianProcess::relevance() const {
  if (!fitted_) throw std::logic_error("AdditiveGaussianProcess: relevance before fit");
  std::vector<double> per_group(groups_, 0.0);
  double total = 0.0;
  for (std::size_t d = 0; d < weights_.size(); ++d) {
    per_group[owners_[d]] += weights_[d];
    total += weights_[d];
  }
  if (total > 0.0) {
    for (auto& v : per_group) v /= total;
  }
  return per_group;
}

}  // namespace stune::model
