#include "model/additive_gp.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numbers>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace stune::model {

namespace {

double matern52(double r) {
  const double s = std::sqrt(5.0) * r;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

}  // namespace

double AdditiveGaussianProcess::kernel(const std::vector<double>& a,
                                       const std::vector<double>& b) const {
  double acc = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (weights_[d] <= 0.0) continue;
    acc += weights_[d] * matern52(std::abs(a[d] - b[d]) / lengthscales_[d]);
  }
  return acc;
}

bool AdditiveGaussianProcess::refit(const std::vector<double>& y, double* lml) {
  const std::size_t n = x_.size();
  linalg::Matrix k(n, n);
  const double noise = noise_ + 1e-8;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(x_[i], x_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise;
  }
  try {
    chol_ = linalg::cholesky(k);
  } catch (const std::runtime_error&) {
    return false;
  }
  alpha_ = linalg::cholesky_solve(chol_, y);
  double value = -0.5 * linalg::dot(y, alpha_);
  for (std::size_t i = 0; i < n; ++i) value -= std::log(chol_(i, i));
  value -= 0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
  *lml = value;
  return true;
}

void AdditiveGaussianProcess::fit(const Dataset& data, std::vector<std::size_t> feature_owners) {
  if (data.empty()) throw std::invalid_argument("AdditiveGaussianProcess: empty dataset");
  x_ = data.features();
  const std::size_t dims = data.dim();
  if (feature_owners.empty()) {
    feature_owners.resize(dims);
    std::iota(feature_owners.begin(), feature_owners.end(), std::size_t{0});
  }
  if (feature_owners.size() != dims) {
    throw std::invalid_argument("AdditiveGaussianProcess: owners size mismatch");
  }
  owners_ = std::move(feature_owners);
  groups_ = owners_.empty() ? 0 : *std::max_element(owners_.begin(), owners_.end()) + 1;

  scaler_ = TargetScaler::fit(data.targets());
  std::vector<double> y(data.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = scaler_.to_normalized(data.target(i));

  // Per-dimension lengthscales from the median absolute difference.
  lengthscales_.assign(dims, 1.0);
  for (std::size_t d = 0; d < dims; ++d) {
    std::vector<double> diffs;
    const std::size_t stride = x_.size() > 48 ? x_.size() / 48 : 1;
    for (std::size_t i = 0; i < x_.size(); i += stride) {
      for (std::size_t j = i + stride; j < x_.size(); j += stride) {
        diffs.push_back(std::abs(x_[i][d] - x_[j][d]));
      }
    }
    double median = 0.3;
    if (!diffs.empty()) {
      std::nth_element(diffs.begin(), diffs.begin() + static_cast<std::ptrdiff_t>(diffs.size() / 2),
                       diffs.end());
      median = std::max(0.05, diffs[diffs.size() / 2]);
    }
    lengthscales_[d] = median;
  }

  // Coordinate ascent on the LML over the *allocation* of a unit total
  // kernel variance across dimensions: trying a new raw weight for one
  // dimension always renormalizes the vector to sum 1, so the search
  // compares relative importances rather than total signal variance
  // (targets are normalized to unit variance already).
  const double base = 1.0 / static_cast<double>(dims);
  std::vector<double> raw(dims, base);
  auto normalized = [&](const std::vector<double>& w) {
    double total = 0.0;
    for (const double v : w) total += v;
    std::vector<double> out(w);
    if (total <= 0.0) {
      std::fill(out.begin(), out.end(), base);
    } else {
      for (auto& v : out) v /= total;
    }
    return out;
  };

  weights_ = normalized(raw);
  double best_lml = -std::numeric_limits<double>::infinity();
  // Pick the noise level by marginal likelihood under the current weights;
  // re-checked after the sweeps (less additive structure claimed means more
  // residual noise).
  auto tune_noise = [&] {
    double best = -std::numeric_limits<double>::infinity();
    double best_noise = options_.noise_grid.front();
    for (const double candidate : options_.noise_grid) {
      noise_ = candidate;
      double lml = 0.0;
      if (refit(y, &lml) && lml > best) {
        best = lml;
        best_noise = candidate;
      }
    }
    noise_ = best_noise;
    best_lml = std::max(best_lml, best);
  };
  tune_noise();
  for (std::size_t sweep = 0; sweep < options_.sweeps; ++sweep) {
    for (std::size_t d = 0; d < dims; ++d) {
      const double saved = raw[d];
      double best_raw = saved;
      for (const double mult : options_.weight_grid) {
        raw[d] = base * mult;
        if (raw[d] == saved) continue;
        weights_ = normalized(raw);
        double lml = 0.0;
        if (refit(y, &lml) && lml > best_lml) {
          best_lml = lml;
          best_raw = raw[d];
        }
      }
      raw[d] = best_raw;
    }
  }
  // Leave the state consistent with the final weights.
  weights_ = normalized(raw);
  tune_noise();
  if (!refit(y, &best_lml)) {
    throw std::runtime_error("AdditiveGaussianProcess: degenerate final kernel");
  }
  lml_ = best_lml;
  fitted_ = true;
}

GpPrediction AdditiveGaussianProcess::predict(const std::vector<double>& x) const {
  if (!fitted_) throw std::logic_error("AdditiveGaussianProcess: predict before fit");
  const std::size_t n = x_.size();
  linalg::Vector k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(x, x_[i]);
  const double mean_z = linalg::dot(k_star, alpha_);
  const linalg::Vector v = linalg::solve_lower(chol_, k_star);
  const double var_z = std::max(1e-10, kernel(x, x) + noise_ - linalg::dot(v, v));
  GpPrediction p;
  p.mean = scaler_.to_raw(mean_z);
  p.variance = var_z * scaler_.stddev * scaler_.stddev;
  return p;
}

std::vector<double> AdditiveGaussianProcess::relevance() const {
  if (!fitted_) throw std::logic_error("AdditiveGaussianProcess: relevance before fit");
  std::vector<double> per_group(groups_, 0.0);
  double total = 0.0;
  for (std::size_t d = 0; d < weights_.size(); ++d) {
    per_group[owners_[d]] += weights_[d];
    total += weights_[d];
  }
  if (total > 0.0) {
    for (auto& v : per_group) v /= total;
  }
  return per_group;
}

}  // namespace stune::model
