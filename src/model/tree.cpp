#include "model/tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "simcore/thread_pool.hpp"

namespace stune::model {

namespace {

struct SplitResult {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

double sse_of(const Dataset& data, const std::vector<std::size_t>& idx, std::size_t begin,
              std::size_t end) {
  double mean = 0.0;
  for (std::size_t i = begin; i < end; ++i) mean += data.target(idx[i]);
  mean /= static_cast<double>(end - begin);
  double sse = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = data.target(idx[i]) - mean;
    sse += d * d;
  }
  return sse;
}

}  // namespace

void RegressionTree::fit(const Dataset& data, simcore::Rng rng) {
  if (data.empty()) throw std::invalid_argument("RegressionTree: empty dataset");
  nodes_.clear();
  dim_ = data.dim();
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  build(data, indices, 0, data.size(), 0, rng);
}

int RegressionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                          std::size_t begin, std::size_t end, int depth, simcore::Rng& rng) {
  const std::size_t n = end - begin;
  Node node;
  node.depth = depth;
  double mean = 0.0;
  for (std::size_t i = begin; i < end; ++i) mean += data.target(indices[i]);
  mean /= static_cast<double>(n);
  node.value = mean;

  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  if (static_cast<std::size_t>(depth) >= options_.max_depth || n < options_.min_samples_split) {
    return id;
  }

  // Feature subsampling.
  std::vector<std::size_t> features(dim_);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t n_feats = dim_;
  if (options_.feature_subsample < 1.0) {
    n_feats = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(options_.feature_subsample * static_cast<double>(dim_))));
    rng.shuffle(features);
    features.resize(n_feats);
  }

  const double parent_sse = sse_of(data, indices, begin, end);
  SplitResult best;
  std::vector<double> values;
  values.reserve(n);

  for (const std::size_t f : features) {
    values.clear();
    for (std::size_t i = begin; i < end; ++i) values.push_back(data.row(indices[i])[f]);
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) continue;

    // Quantile candidate thresholds.
    const std::size_t cuts = std::min(options_.candidate_cuts, n - 1);
    for (std::size_t c = 1; c <= cuts; ++c) {
      const std::size_t pos = c * n / (cuts + 1);
      const double threshold = 0.5 * (values[pos] + values[std::min(pos + 1, n - 1)]);
      // Evaluate: single pass accumulating left/right stats.
      double ls = 0.0, lss = 0.0, rs = 0.0, rss = 0.0;
      std::size_t ln = 0, rn = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const double y = data.target(indices[i]);
        if (data.row(indices[i])[f] <= threshold) {
          ls += y;
          lss += y * y;
          ++ln;
        } else {
          rs += y;
          rss += y * y;
          ++rn;
        }
      }
      if (ln < options_.min_samples_leaf || rn < options_.min_samples_leaf) continue;
      const double child_sse =
          (lss - ls * ls / static_cast<double>(ln)) + (rss - rs * rs / static_cast<double>(rn));
      const double gain = parent_sse - child_sse;
      if (gain > best.gain) {
        best = SplitResult{static_cast<int>(f), threshold, gain};
      }
    }
  }

  if (best.feature < 0 || best.gain <= 1e-12) return id;

  // Partition indices in place around the chosen split.
  const auto mid_it = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return data.row(i)[static_cast<std::size_t>(best.feature)] <= best.threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return id;  // numeric edge: give up

  nodes_[static_cast<std::size_t>(id)].feature = best.feature;
  nodes_[static_cast<std::size_t>(id)].threshold = best.threshold;
  nodes_[static_cast<std::size_t>(id)].gain = best.gain;
  const int left = build(data, indices, begin, mid, depth + 1, rng);
  const int right = build(data, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(id)].left = left;
  nodes_[static_cast<std::size_t>(id)].right = right;
  return id;
}

double RegressionTree::predict_row(const double* x) const {
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const auto& nd = nodes_[static_cast<std::size_t>(cur)];
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].value;
}

double RegressionTree::predict(const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("RegressionTree: predict before fit");
  if (x.size() != dim_) throw std::invalid_argument("RegressionTree: dimension mismatch");
  return predict_row(x.data());
}

std::vector<double> RegressionTree::predict_batch(const linalg::Matrix& candidates,
                                                  simcore::ThreadPool* pool) const {
  if (!fitted()) throw std::logic_error("RegressionTree: predict before fit");
  if (candidates.cols() != dim_) throw std::invalid_argument("RegressionTree: dimension mismatch");
  const std::size_t m = candidates.rows();
  std::vector<double> out(m);
  if (pool == nullptr || pool->size() <= 1 || m < 64) {
    for (std::size_t j = 0; j < m; ++j) out[j] = predict_row(candidates.row_ptr(j));
    return out;
  }
  // Contiguous shards writing disjoint output slices; each traversal is
  // independent, so any job count reproduces the serial scan bitwise.
  const std::size_t shard = (m + pool->size() - 1) / pool->size();
  std::vector<std::future<void>> futures;
  futures.reserve(pool->size());
  const std::span<double> slice(out);
  for (std::size_t begin = 0; begin < m; begin += shard) {
    const std::size_t end = std::min(m, begin + shard);
    futures.push_back(pool->submit([this, &candidates, begin, end, slice] {
      for (std::size_t j = begin; j < end; ++j) slice[j] = predict_row(candidates.row_ptr(j));
    }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  return out;
}

std::size_t RegressionTree::depth() const {
  std::size_t d = 0;
  for (const auto& nd : nodes_) d = std::max(d, static_cast<std::size_t>(nd.depth));
  return d;
}

std::vector<double> RegressionTree::feature_importance() const {
  std::vector<double> imp(dim_, 0.0);
  for (const auto& nd : nodes_) {
    if (nd.feature >= 0) imp[static_cast<std::size_t>(nd.feature)] += nd.gain;
  }
  return imp;
}

RandomForest::RandomForest(ForestOptions options) : options_(options) {
  if (options_.trees == 0) throw std::invalid_argument("RandomForest: needs at least one tree");
}

void RandomForest::fit(const Dataset& data, simcore::Rng rng) {
  if (data.empty()) throw std::invalid_argument("RandomForest: empty dataset");
  trees_.clear();
  trees_.reserve(options_.trees);
  const auto n = data.size();
  const auto sample_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.bootstrap_fraction * static_cast<double>(n)));
  for (std::size_t t = 0; t < options_.trees; ++t) {
    simcore::Rng tree_rng = rng.fork(t + 1);
    Dataset boot;
    boot.reserve(sample_n);
    for (std::size_t i = 0; i < sample_n; ++i) {
      const auto pick = static_cast<std::size_t>(
          tree_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      boot.add(data.row(pick), data.target(pick));
    }
    RegressionTree tree(options_.tree);
    tree.fit(boot, tree_rng.fork("splits"));
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict(const std::vector<double>& x) const {
  double mean = 0.0, var = 0.0;
  predict_dist(x, &mean, &var);
  return mean;
}

void RandomForest::predict_dist(const std::vector<double>& x, double* mean, double* var) const {
  if (!fitted()) throw std::logic_error("RandomForest: predict before fit");
  double s = 0.0, ss = 0.0;
  for (const auto& t : trees_) {
    const double y = t.predict(x);
    s += y;
    ss += y * y;
  }
  const auto n = static_cast<double>(trees_.size());
  *mean = s / n;
  *var = std::max(0.0, ss / n - (*mean) * (*mean));
}

std::vector<double> RandomForest::feature_importance() const {
  if (!fitted()) return {};
  std::vector<double> total = trees_.front().feature_importance();
  for (std::size_t t = 1; t < trees_.size(); ++t) {
    const auto imp = trees_[t].feature_importance();
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += imp[i];
  }
  for (auto& v : total) v /= static_cast<double>(trees_.size());
  return total;
}

}  // namespace stune::model
