// Gaussian process regression with a Matérn 5/2 kernel and the expected
// improvement acquisition — the machinery behind CherryPick's Bayesian
// optimization (paper §II-A).
//
// The surrogate is the tuning service's own CPU hot path (it runs on every
// observation of every tenant), so the fit is incremental: observe() appends
// one kernel row and extends the Cholesky factor in O(n²) via
// linalg::cholesky_append, and the full hyperparameter search (target
// rescaling, median heuristic, lengthscale grid) only re-runs every
// `refresh_interval` observations — or earlier, when the per-point log
// marginal likelihood degrades past a threshold. Both triggers are pure
// functions of the committed observation sequence, so the policy is
// deterministic and invariant to evaluation concurrency. A cached pairwise-
// distance matrix, maintained incrementally, is shared across the grid
// entries of a refresh: each kernel build is O(n²) instead of O(n²·d).
//
// Hyperparameters are set pragmatically: the lengthscale from the median
// pairwise distance scaled over a small grid chosen by log marginal
// likelihood, signal variance from the target variance, and a fixed
// relative noise floor. This matches the referenced systems' "no outer
// optimizer" engineering reality while staying fully deterministic.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "model/dataset.hpp"

namespace stune::simcore {
class ThreadPool;
}

namespace stune::model {

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

class GaussianProcess {
 public:
  struct Options {
    /// Relative noise (fraction of signal variance) added to the diagonal.
    double noise = 1e-2;
    /// Lengthscale multipliers tried around the median heuristic.
    std::vector<double> lengthscale_grid = {0.3, 1.0, 3.0};
    /// observe(): full hyperparameter refreshes run every this many
    /// observations; in between, the factor is extended incrementally
    /// under frozen hyperparameters.
    std::size_t refresh_interval = 8;
    /// Early-refresh trigger: refresh when the per-point log marginal
    /// likelihood drops this far (nats per observation) below its value at
    /// the last refresh — the frozen hyperparameters no longer explain the
    /// data.
    double lml_drop_per_point = 1.0;
    /// When false, observe() rebuilds the factorization from scratch at
    /// every observation under the same refresh schedule and frozen
    /// hyperparameters — the full-refactorization baseline the incremental
    /// path is benchmarked (and golden-tested) against.
    bool incremental = true;
  };

  GaussianProcess() : GaussianProcess(Options{}) {}
  explicit GaussianProcess(Options options) : options_(std::move(options)) {}

  /// Full fit: loads the dataset, builds the distance cache and runs one
  /// hyperparameter refresh. Throws std::invalid_argument on an empty
  /// dataset and std::runtime_error when no grid entry yields a positive-
  /// definite kernel (degenerate data).
  void fit(const Dataset& data);

  /// Append one observation and update the factorization in O(n²) (see the
  /// header comment for the refresh policy). Never throws on numerical
  /// failure: a failed incremental step falls back to a full refresh, and a
  /// failed refresh leaves the model unfitted — check fitted() — until more
  /// data arrives. Throws std::invalid_argument on a dimension mismatch.
  void observe(std::span<const double> x, double y);
  void observe(std::initializer_list<double> x, double y) {
    observe(std::span<const double>(x.begin(), x.size()), y);
  }

  GpPrediction predict(std::span<const double> x) const;
  GpPrediction predict(std::initializer_list<double> x) const {
    return predict(std::span<const double>(x.begin(), x.size()));
  }

  /// Score every row of `candidates` in one pass: all k*-vectors as one
  /// kernel-block build, all means as one matrix-vector product, all
  /// variances through one multi-RHS triangular solve. With a pool, rows are
  /// sharded into contiguous ranges whose workers write disjoint output
  /// slices, so the result is bitwise identical to the serial scan — and to
  /// looped scalar predict() — for any job count.
  std::vector<GpPrediction> predict_batch(const linalg::Matrix& candidates,
                                          simcore::ThreadPool* pool = nullptr) const;

  bool fitted() const { return fitted_; }
  std::size_t size() const { return n_; }
  double lengthscale() const { return lengthscale_; }
  /// Log marginal likelihood of the current factorization.
  double log_marginal_likelihood() const { return lml_; }
  /// Full hyperparameter refreshes performed so far (fit() counts one).
  std::size_t refreshes() const { return refreshes_; }

 private:
  void append_point(std::span<const double> x, double y);
  /// Re-pick scaler and lengthscale on all data (reads the distance cache);
  /// false if no grid entry factorizes.
  bool refresh_hyperparameters();
  /// Rebuild the factorization from scratch under the frozen
  /// hyperparameters; false on numeric failure.
  bool rebuild_factor();
  /// Extend the factorization by the newly appended row (rank-1 Cholesky
  /// update); false on numeric failure.
  bool extend_factor();
  void predict_range(const linalg::Matrix& candidates, std::size_t begin, std::size_t end,
                     std::span<GpPrediction> out) const;

  Options options_;
  bool fitted_ = false;
  std::size_t n_ = 0;    // observations
  std::size_t dim_ = 0;  // feature dimension
  double lengthscale_ = 1.0;
  double signal_var_ = 1.0;
  double lml_ = 0.0;
  double lml_per_point_at_refresh_ = 0.0;
  std::size_t since_refresh_ = 0;
  std::size_t refreshes_ = 0;
  TargetScaler scaler_;
  std::vector<double> x_;      // flat row-major features, n_ × dim_
  std::vector<double> y_raw_;  // raw targets (refreshes re-normalize)
  std::vector<double> y_;      // targets under the frozen scaler_
  std::vector<double> dist_;   // flat n_ × n_ pairwise distances (cached)
  linalg::Matrix chol_;        // L of K + noise I
  linalg::Vector alpha_;       // (K + noise I)^-1 y
};

/// Expected improvement of a *minimization* objective at a point predicted
/// (mean, variance), against the incumbent best (lowest) value.
double expected_improvement(double mean, double variance, double best);

}  // namespace stune::model
