// Gaussian process regression with a Matérn 5/2 kernel and the expected
// improvement acquisition — the machinery behind CherryPick's Bayesian
// optimization (paper §II-A).
//
// Hyperparameters are set pragmatically: the lengthscale from the median
// pairwise distance scaled over a small grid chosen by log marginal
// likelihood, signal variance from the target variance, and a fixed
// relative noise floor. This matches the referenced systems' "no outer
// optimizer" engineering reality while staying fully deterministic.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "model/dataset.hpp"

namespace stune::model {

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

class GaussianProcess {
 public:
  struct Options {
    /// Relative noise (fraction of signal variance) added to the diagonal.
    double noise = 1e-2;
    /// Lengthscale multipliers tried around the median heuristic.
    std::vector<double> lengthscale_grid = {0.3, 1.0, 3.0};
  };

  GaussianProcess() : GaussianProcess(Options{}) {}
  explicit GaussianProcess(Options options) : options_(std::move(options)) {}

  void fit(const Dataset& data);
  GpPrediction predict(const std::vector<double>& x) const;
  bool fitted() const { return fitted_; }
  double lengthscale() const { return lengthscale_; }
  /// Log marginal likelihood of the selected hyperparameters.
  double log_marginal_likelihood() const { return lml_; }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  Options options_;
  bool fitted_ = false;
  double lengthscale_ = 1.0;
  double signal_var_ = 1.0;
  double lml_ = 0.0;
  TargetScaler scaler_;
  std::vector<std::vector<double>> x_;
  linalg::Matrix chol_;        // L of K + noise I
  linalg::Vector alpha_;       // (K + noise I)^-1 y
};

/// Expected improvement of a *minimization* objective at a point predicted
/// (mean, variance), against the incumbent best (lowest) value.
double expected_improvement(double mean, double variance, double best);

}  // namespace stune::model
