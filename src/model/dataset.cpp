#include "model/dataset.hpp"

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "simcore/stats.hpp"

namespace stune::model {

void Dataset::add(std::span<const double> x, double y) {
  if (!y_.empty() && x.size() != dim_) {
    throw std::invalid_argument("Dataset: inconsistent feature dimension");
  }
  if (y_.empty()) dim_ = x.size();
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(y);
}

void Dataset::reserve(std::size_t n) {
  x_.reserve(n * (dim_ > 0 ? dim_ : 1));
  y_.reserve(n);
}

linalg::Matrix Dataset::design_matrix(bool add_bias) const {
  const std::size_t d = dim() + (add_bias ? 1 : 0);
  linalg::Matrix m(size(), d);
  for (std::size_t r = 0; r < size(); ++r) {
    std::size_t c = 0;
    if (add_bias) m(r, c++) = 1.0;
    for (const double v : row(r)) m(r, c++) = v;
  }
  return m;
}

TargetScaler TargetScaler::fit(const std::vector<double>& y) {
  simcore::RunningStats s;
  for (const double v : y) s.add(v);
  TargetScaler t;
  t.mean = s.mean();
  t.stddev = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  return t;
}

}  // namespace stune::model
