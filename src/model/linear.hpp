// Linear performance models: ridge regression (Wang-style baselines) and
// the Ernest scaling model (Venkataraman et al., NSDI'16) used for cloud
// configuration prediction.
#pragma once

#include <vector>

#include "model/dataset.hpp"

namespace stune::model {

/// Ridge regression with intercept on raw features.
class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}

  void fit(const Dataset& data);
  double predict(const std::vector<double>& x) const;
  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }  // [bias, w...]

 private:
  double lambda_;
  std::vector<double> weights_;
};

/// Ernest models runtime of a scale-out analytics job as a non-negative
/// combination of interpretable terms of (data size, machine count):
///   t(d, m) = w0 + w1 * d/m + w2 * log(m) + w3 * m
/// capturing serial overhead, perfectly parallel work, tree-aggregation
/// depth and per-machine coordination cost.
class ErnestModel {
 public:
  /// One observation: data size (normalized units), machines, runtime.
  void add_observation(double data_size, double machines, double runtime);
  void fit();
  double predict(double data_size, double machines) const;
  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }

  static std::vector<double> basis(double data_size, double machines);

 private:
  Dataset data_;
  std::vector<double> weights_;
};

}  // namespace stune::model
