// AROMA-style advisor (Lama & Zhou, ICAC'12; paper §II-B, §V-B): cluster
// previously executed jobs by their resource signatures (k-medoids on CPU/
// IO/network profiles), and recommend the best configurations seen inside
// the cluster a new workload falls into. The paper cites this as the
// canonical "leverage tuning knowledge across workloads" design; here it
// provides warm starts from the provider's knowledge base as an
// alternative to nearest-neighbour signature matching.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/rng.hpp"
#include "transfer/characterization.hpp"
#include "transfer/warm_start.hpp"

namespace stune::transfer {

class AromaAdvisor {
 public:
  struct Options {
    std::size_t clusters = 4;
    /// Best configurations returned per suggestion.
    std::size_t suggestions = 5;
    std::uint64_t seed = 1;
  };

  AromaAdvisor() : AromaAdvisor(Options{}) {}
  explicit AromaAdvisor(Options options) : options_(options) {}

  /// Cluster the execution history. Throws std::invalid_argument on an
  /// empty history. Failed executions are ignored.
  void fit(const std::vector<DonorObservation>& history);

  bool fitted() const { return !clusters_.empty(); }
  std::size_t cluster_count() const { return clusters_.size(); }

  /// Index of the cluster `target` falls into (nearest medoid).
  std::size_t assign(const Signature& target) const;

  /// The best (lowest-runtime, deduplicated) configurations of the target's
  /// cluster, as warm-start observations.
  std::vector<tuning::Observation> suggest(const Signature& target) const;

  /// Medoid signature of a cluster (for inspection/tests).
  const Signature& medoid(std::size_t cluster) const;

 private:
  struct Cluster {
    Signature medoid;
    std::vector<tuning::Observation> best;  // ascending runtime, deduped
  };

  Options options_;
  std::vector<Cluster> clusters_;
};

}  // namespace stune::transfer
