// Knowledge transfer across workloads (paper §V-B).
//
// Given tuning history harvested from *similar* workloads, build the
// warm-start observation set a tuner can be seeded with, guarded against
// negative transfer: below a similarity floor, no knowledge is injected
// (transferring from a dissimilar workload is worse than starting cold —
// the paper cites Ge et al. on negative transfer).
#pragma once

#include <cstddef>
#include <vector>

#include "transfer/characterization.hpp"
#include "tuning/tuner.hpp"

namespace stune::transfer {

/// A donor candidate: one past tuning observation plus the signature of the
/// workload it came from.
struct DonorObservation {
  tuning::Observation observation;
  Signature signature;
};

struct TransferPolicy {
  /// Donors less similar than this contribute nothing (negative-transfer
  /// guard).
  double min_similarity = 0.6;
  /// At most this many observations are injected.
  std::size_t max_observations = 10;
  /// Keep only the donors' best configurations (by runtime).
  bool best_only = true;
};

/// Select the warm-start set for a workload with signature `target`.
/// Returned observations are ordered by (similarity, runtime) descending
/// usefulness.
std::vector<tuning::Observation> select_warm_start(const Signature& target,
                                                   const std::vector<DonorObservation>& donors,
                                                   const TransferPolicy& policy = {});

}  // namespace stune::transfer
