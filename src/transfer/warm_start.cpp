#include "transfer/warm_start.hpp"

#include <algorithm>
#include <vector>

namespace stune::transfer {

std::vector<tuning::Observation> select_warm_start(const Signature& target,
                                                   const std::vector<DonorObservation>& donors,
                                                   const TransferPolicy& policy) {
  struct Scored {
    const DonorObservation* donor;
    double sim;
  };
  std::vector<Scored> eligible;
  for (const auto& d : donors) {
    if (policy.best_only && d.observation.failed) continue;
    const double sim = similarity(target, d.signature);
    if (sim >= policy.min_similarity) eligible.push_back({&d, sim});
  }
  std::sort(eligible.begin(), eligible.end(), [](const Scored& a, const Scored& b) {
    if (a.sim != b.sim) return a.sim > b.sim;
    return a.donor->observation.runtime < b.donor->observation.runtime;
  });

  std::vector<tuning::Observation> out;
  out.reserve(std::min(policy.max_observations, eligible.size()));
  for (const auto& s : eligible) {
    if (out.size() >= policy.max_observations) break;
    // Deduplicate identical configurations from different donors.
    const auto fp = s.donor->observation.config.fingerprint();
    const bool dup = std::any_of(out.begin(), out.end(), [&](const tuning::Observation& o) {
      return o.config.fingerprint() == fp;
    });
    if (!dup) out.push_back(s.donor->observation);
  }
  return out;
}

}  // namespace stune::transfer
