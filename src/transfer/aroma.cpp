#include "transfer/aroma.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

#include "model/kmedoids.hpp"

namespace stune::transfer {

void AromaAdvisor::fit(const std::vector<DonorObservation>& history) {
  std::vector<const DonorObservation*> usable;
  for (const auto& d : history) {
    if (!d.observation.failed) usable.push_back(&d);
  }
  if (usable.empty()) throw std::invalid_argument("AromaAdvisor: empty execution history");

  std::vector<std::vector<double>> points;
  points.reserve(usable.size());
  for (const auto* d : usable) {
    const auto dims = d->signature.as_array();
    points.emplace_back(dims.begin(), dims.end());
  }

  const std::size_t k = std::min(options_.clusters, usable.size());
  const auto result = model::kmedoids(points, k, simcore::Rng(options_.seed));

  clusters_.assign(k, Cluster{});
  for (std::size_t c = 0; c < k; ++c) {
    clusters_[c].medoid = usable[result.medoids[c]]->signature;
  }
  // Gather members, then keep each cluster's best distinct configurations.
  std::vector<std::vector<const DonorObservation*>> members(k);
  for (std::size_t i = 0; i < usable.size(); ++i) {
    members[result.assignment[i]].push_back(usable[i]);
  }
  for (std::size_t c = 0; c < k; ++c) {
    auto& group = members[c];
    std::sort(group.begin(), group.end(), [](const auto* a, const auto* b) {
      return a->observation.runtime < b->observation.runtime;
    });
    for (const auto* d : group) {
      if (clusters_[c].best.size() >= options_.suggestions) break;
      const auto fp = d->observation.config.fingerprint();
      const bool dup = std::any_of(clusters_[c].best.begin(), clusters_[c].best.end(),
                                   [&](const tuning::Observation& o) {
                                     return o.config.fingerprint() == fp;
                                   });
      if (!dup) clusters_[c].best.push_back(d->observation);
    }
  }
}

std::size_t AromaAdvisor::assign(const Signature& target) const {
  if (!fitted()) throw std::logic_error("AromaAdvisor: assign before fit");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const double d = distance(target, clusters_[c].medoid);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::vector<tuning::Observation> AromaAdvisor::suggest(const Signature& target) const {
  return clusters_[assign(target)].best;
}

const Signature& AromaAdvisor::medoid(std::size_t cluster) const {
  return clusters_.at(cluster).medoid;
}

}  // namespace stune::transfer
