// Workload characterization (paper §V-B): reduce an execution report to a
// compact signature that captures *what the workload does* — where its time
// goes, how much it shuffles, caches and spills — so the tuning service can
// recognize similar workloads across tenants and transfer tuning knowledge
// between them without ever looking at user code.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "disc/metrics.hpp"

namespace stune::transfer {

/// A point in characterization space. All components are scale-free
/// (fractions or per-input ratios), so the same workload at different input
/// sizes lands nearby — which is exactly what makes DS1-tuning knowledge
/// transferable to DS3.
struct Signature {
  static constexpr std::size_t kDims = 8;

  double cpu_fraction = 0.0;
  double disk_fraction = 0.0;
  double net_fraction = 0.0;
  double gc_fraction = 0.0;
  double shuffle_per_input = 0.0;   // log-compressed ratio
  double spill_per_input = 0.0;     // log-compressed ratio
  double stage_depth = 0.0;         // log of stage count (iterativeness)
  double cache_pressure = 0.0;      // 1 - cache hit fraction

  std::array<double, kDims> as_array() const;
  std::vector<double> as_vector() const;
  std::string describe() const;
};

/// Derive the signature of one execution.
Signature characterize(const disc::ExecutionReport& report);

/// Euclidean distance in signature space.
double distance(const Signature& a, const Signature& b);

/// Similarity in [0, 1]: exp(-distance / scale). The default scale is
/// calibrated so the same workload at a 4x input size lands above the
/// default transfer guard (~0.6) while workloads with different resource
/// profiles land well below it.
double similarity(const Signature& a, const Signature& b, double scale = 1.0);

}  // namespace stune::transfer
