#include "transfer/characterization.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

namespace stune::transfer {

namespace {

/// log1p-compress a per-input ratio so heavy shufflers don't dominate the
/// distance metric.
double log_ratio(double numerator, double denominator) {
  if (denominator <= 0.0) return 0.0;
  return std::log1p(numerator / denominator);
}

}  // namespace

std::array<double, Signature::kDims> Signature::as_array() const {
  return {cpu_fraction, disk_fraction,     net_fraction,   gc_fraction,
          shuffle_per_input, spill_per_input, stage_depth, cache_pressure};
}

std::vector<double> Signature::as_vector() const {
  const auto a = as_array();
  return std::vector<double>(a.begin(), a.end());
}

std::string Signature::describe() const {
  std::ostringstream out;
  out << "cpu=" << cpu_fraction << " disk=" << disk_fraction << " net=" << net_fraction
      << " gc=" << gc_fraction << " shuffle=" << shuffle_per_input
      << " spill=" << spill_per_input << " depth=" << stage_depth
      << " cache-pressure=" << cache_pressure;
  return out.str();
}

Signature characterize(const disc::ExecutionReport& report) {
  Signature s;
  s.cpu_fraction = report.cpu_fraction();
  s.disk_fraction = report.disk_fraction();
  s.net_fraction = report.net_fraction();
  s.gc_fraction = report.gc_fraction();
  const auto input = static_cast<double>(report.total_input);
  s.shuffle_per_input = log_ratio(static_cast<double>(report.total_shuffle_read), input);
  s.spill_per_input = log_ratio(static_cast<double>(report.total_spilled), input);
  s.stage_depth = std::log1p(static_cast<double>(report.stages.size()));
  s.cache_pressure = 1.0 - report.cache_hit_fraction;
  return s;
}

double distance(const Signature& a, const Signature& b) {
  const auto va = a.as_array();
  const auto vb = b.as_array();
  double acc = 0.0;
  for (std::size_t i = 0; i < Signature::kDims; ++i) {
    const double d = va[i] - vb[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double similarity(const Signature& a, const Signature& b, double scale) {
  return std::exp(-distance(a, b) / scale);
}

}  // namespace stune::transfer
