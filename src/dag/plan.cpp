#include "dag/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/rng.hpp"
#include "simcore/units.hpp"

namespace stune::dag {

namespace {

constexpr double kGiBf = 1024.0 * 1024.0 * 1024.0;

double gib(Bytes b) { return static_cast<double>(b) / kGiBf; }

Bytes scale_bytes(Bytes b, double factor) {
  const double scaled = static_cast<double>(b) * factor;
  return scaled <= 0.0 ? 0 : static_cast<Bytes>(scaled);
}

}  // namespace

Bytes StagePlan::shuffle_read_bytes() const {
  Bytes total = 0;
  for (const auto& in : shuffle_inputs) total += in.bytes;
  return total;
}

Bytes StagePlan::total_input_bytes() const {
  return source_read_bytes + materialized_read_bytes + shuffle_read_bytes();
}

Bytes PhysicalPlan::total_cache_bytes() const {
  Bytes total = 0;
  for (const auto& s : stages) total += s.cache_write_bytes;
  return total;
}

Bytes PhysicalPlan::total_shuffle_bytes() const {
  Bytes total = 0;
  for (const auto& s : stages) total += s.shuffle_write_bytes;
  return total;
}

std::string PhysicalPlan::describe() const {
  std::ostringstream out;
  out << "physical plan for '" << workload << "' over "
      << simcore::format_bytes(input_bytes) << " (" << stages.size() << " stages)\n";
  for (const auto& s : stages) {
    out << "  stage " << s.id << " [" << s.label << "]";
    if (!s.parent_stages.empty()) {
      out << " <- stages {";
      for (std::size_t i = 0; i < s.parent_stages.size(); ++i) {
        out << (i ? "," : "") << s.parent_stages[i];
      }
      out << "}";
    }
    out << "\n    in: ";
    if (s.reads_source()) out << "source " << simcore::format_bytes(s.source_read_bytes) << " ";
    if (s.materialized_read_bytes > 0) {
      out << (s.materialized_parent_cached ? "cache " : "recompute ")
          << simcore::format_bytes(s.materialized_read_bytes) << " ";
    }
    if (s.reads_shuffle()) out << "shuffle " << simcore::format_bytes(s.shuffle_read_bytes());
    out << "\n    out: ";
    if (s.shuffle_write_bytes > 0) out << "shuffle " << simcore::format_bytes(s.shuffle_write_bytes) << " ";
    if (s.cache_write_bytes > 0) out << "cache " << simcore::format_bytes(s.cache_write_bytes) << " ";
    if (s.result_bytes > 0) out << "result " << simcore::format_bytes(s.result_bytes);
    out << '\n';
  }
  return out.str();
}

std::uint64_t PhysicalPlan::fingerprint() const {
  using simcore::hash_combine;
  using simcore::hash_double;
  std::uint64_t h = simcore::hash_string(workload);
  h = hash_combine(h, is_sql ? 1ULL : 0ULL);
  h = hash_combine(h, input_bytes);
  h = hash_combine(h, static_cast<std::uint64_t>(action));
  for (const auto& s : stages) {
    h = hash_combine(h, static_cast<std::uint64_t>(s.id));
    h = hash_combine(h, simcore::hash_string(s.label));
    for (const int r : s.rdd_ids) h = hash_combine(h, static_cast<std::uint64_t>(r));
    for (const int p : s.parent_stages) h = hash_combine(h, static_cast<std::uint64_t>(p));
    h = hash_combine(h, s.source_read_bytes);
    h = hash_combine(h, s.materialized_read_bytes);
    h = hash_combine(h, s.materialized_parent_cached ? 1ULL : 0ULL);
    h = hash_combine(h, hash_double(s.recompute_cpu_per_gib));
    for (const auto& in : s.shuffle_inputs) {
      h = hash_combine(h, static_cast<std::uint64_t>(in.from_stage));
      h = hash_combine(h, in.bytes);
    }
    h = hash_combine(h, s.broadcast_bytes);
    h = hash_combine(h, hash_double(s.cpu_ref_seconds));
    h = hash_combine(h, hash_double(s.records));
    h = hash_combine(h, hash_double(s.agg_memory_factor));
    h = hash_combine(h, hash_double(s.skew_sigma));
    h = hash_combine(h, hash_double(s.record_size));
    h = hash_combine(h, s.shuffle_write_bytes);
    h = hash_combine(h, s.cache_write_bytes);
    h = hash_combine(h, s.result_bytes);
  }
  return h;
}

PlanTopology build_topology(const PhysicalPlan& plan) {
  const std::size_t n = plan.stages.size();
  PlanTopology topo;
  topo.indegree.assign(n, 0);
  topo.child_offsets.assign(n + 1, 0);
  topo.fingerprint = topology_fingerprint(plan);
  for (std::size_t i = 0; i < n; ++i) {
    const StagePlan& s = plan.stages[i];
    if (s.id != static_cast<int>(i)) {
      throw std::invalid_argument("build_topology: stage ids must equal their positions");
    }
    for (const int p : s.parent_stages) {
      if (p < 0 || p >= static_cast<int>(n)) {
        throw std::invalid_argument("build_topology: parent stage out of range");
      }
      // Back edges (parent at or after the consumer) are not scheduling
      // edges: the engine walks stages in id order and reads an unfinished
      // parent's finish time as zero, which the serialized run clock always
      // dominates. The broadcast-join planner emits such edges (the
      // dimension-table stage is created after its consumer), so the
      // topology mirrors the engine's semantics instead of rejecting them.
      if (p >= s.id) continue;
      ++topo.indegree[i];
      ++topo.child_offsets[static_cast<std::size_t>(p) + 1];
      ++topo.edge_count;
    }
  }
  // Prefix-sum the per-parent counts into CSR row starts, then fill.
  for (std::size_t i = 1; i <= n; ++i) topo.child_offsets[i] += topo.child_offsets[i - 1];
  topo.children.assign(topo.edge_count, -1);
  std::vector<int> cursor(topo.child_offsets.begin(), topo.child_offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (const int p : plan.stages[i].parent_stages) {
      if (p >= plan.stages[i].id) continue;  // back edge, skipped above
      topo.children[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] =
          static_cast<int>(i);
    }
  }
  return topo;
}

std::uint64_t topology_fingerprint(const PhysicalPlan& plan) {
  using simcore::hash_combine;
  std::uint64_t h = hash_combine(0x706c616eULL, plan.stages.size());
  for (const auto& s : plan.stages) {
    h = hash_combine(h, static_cast<std::uint64_t>(s.id));
    for (const int p : s.parent_stages) h = hash_combine(h, static_cast<std::uint64_t>(p));
    h = hash_combine(h, simcore::hash_double(s.skew_sigma));
  }
  return h;
}

PhysicalPlan build_physical_plan(const LogicalPlan& plan, Bytes input_bytes) {
  const auto& nodes = plan.nodes();
  if (nodes.empty()) throw std::invalid_argument("cannot plan an empty lineage");
  if (input_bytes == 0) throw std::invalid_argument("input size must be positive");

  const auto children = plan.children();
  auto child_count = [&](int id) { return children[static_cast<std::size_t>(id)].size(); };

  // 1. Propagate data volumes through the lineage.
  std::vector<Bytes> bytes(nodes.size(), 0);
  for (const auto& n : nodes) {
    const auto id = static_cast<std::size_t>(n.id);
    switch (n.kind) {
      case TransformKind::kSource:
        bytes[id] = scale_bytes(input_bytes, n.source_share * n.selectivity);
        break;
      case TransformKind::kBroadcastJoin:
        bytes[id] = scale_bytes(bytes[static_cast<std::size_t>(n.parents[0])], n.selectivity);
        break;
      default: {
        Bytes in = 0;
        for (const int p : n.parents) in += bytes[static_cast<std::size_t>(p)];
        bytes[id] = scale_bytes(in, n.selectivity);
        break;
      }
    }
    if (bytes[id] == 0) bytes[id] = 1;  // keep downstream ratios well-defined
  }

  // Bytes *entering* a node (its processing volume).
  auto input_of = [&](const RddNode& n) -> Bytes {
    if (n.kind == TransformKind::kSource) return scale_bytes(input_bytes, n.source_share);
    if (n.kind == TransformKind::kBroadcastJoin) {
      return bytes[static_cast<std::size_t>(n.parents[0])] +
             bytes[static_cast<std::size_t>(n.parents[1])];
    }
    Bytes in = 0;
    for (const int p : n.parents) in += bytes[static_cast<std::size_t>(p)];
    return in;
  };

  PhysicalPlan phys;
  phys.workload = plan.workload_name();
  phys.is_sql = plan.is_sql();
  phys.input_bytes = input_bytes;
  phys.action = plan.action_kind();

  std::vector<int> stage_of(nodes.size(), -1);
  std::vector<int> stage_tail;  // per stage: last node id in its pipeline

  auto new_stage = [&](const std::string& label) -> StagePlan& {
    StagePlan s;
    s.id = static_cast<int>(phys.stages.size());
    s.label = label;
    phys.stages.push_back(std::move(s));
    stage_tail.push_back(-1);
    return phys.stages.back();
  };

  auto add_parent_stage = [&](StagePlan& s, int parent_stage) {
    if (parent_stage < 0) return;
    auto& ps = s.parent_stages;
    if (std::find(ps.begin(), ps.end(), parent_stage) == ps.end()) ps.push_back(parent_stage);
  };

  // A node's stage can absorb further work only while the node is the stage
  // tail, has a single consumer, and is not persisted for reuse.
  auto pipelineable = [&](int id) {
    return child_count(id) == 1 && !nodes[static_cast<std::size_t>(id)].cached &&
           stage_tail[static_cast<std::size_t>(stage_of[static_cast<std::size_t>(id)])] == id;
  };

  // Charge node n's pipeline work to stage s and make n the stage tail.
  // `work_bytes` is the volume the node actually processes *in this stage*:
  // for wide nodes that is the post-map-side-combine shuffled volume (the
  // combine pass itself is charged to the producing stages by shuffle_from).
  auto absorb = [&](StagePlan& s, const RddNode& n, Bytes work_bytes) {
    s.cpu_ref_seconds += gib(work_bytes) * n.cpu_per_gib;
    s.records += static_cast<double>(work_bytes) / std::max(1.0, n.record_size);
    s.skew_sigma = std::max(s.skew_sigma, n.skew_sigma);
    s.rdd_ids.push_back(n.id);
    if (n.cached) s.cache_write_bytes += bytes[static_cast<std::size_t>(n.id)];
    stage_of[static_cast<std::size_t>(n.id)] = s.id;
    stage_tail[static_cast<std::size_t>(s.id)] = n.id;
    s.label = plan.workload_name() + ":" + n.name;
  };

  // A stage that re-reads a materialized (ideally cached) parent RDD.
  auto materialized_read_stage = [&](int parent_id, const std::string& label) -> StagePlan& {
    const auto& p = nodes[static_cast<std::size_t>(parent_id)];
    StagePlan& s = new_stage(label);
    s.materialized_read_bytes = bytes[static_cast<std::size_t>(parent_id)];
    s.materialized_parent_cached = p.cached;
    // Lineage recompute on miss: roughly the parent's own compute plus a
    // re-read of its input, folded into one CPU figure.
    s.recompute_cpu_per_gib = p.cpu_per_gib + 2.0;
    s.record_size = p.record_size;
    add_parent_stage(s, stage_of[static_cast<std::size_t>(parent_id)]);
    return s;
  };

  // Route parent p's data into wide consumer w: either append the shuffle
  // write to p's open stage, or synthesize a resend stage that re-reads the
  // materialized p and writes shuffle output (what Spark does when joining
  // against a cached RDD each iteration).
  // Fraction of a wide node's per-byte work done map-side (combining,
  // pre-sorting) over the full pre-combine volume; the rest runs
  // reduce-side over the shuffled volume.
  constexpr double kMapSideWorkShare = 0.4;

  auto shuffle_from = [&](int parent_id, const RddNode& w) -> int {
    const Bytes parent_bytes = bytes[static_cast<std::size_t>(parent_id)];
    const Bytes write = scale_bytes(parent_bytes, w.map_side_factor);
    int src_stage;
    if (pipelineable(parent_id)) {
      src_stage = stage_of[static_cast<std::size_t>(parent_id)];
    } else {
      StagePlan& resend = materialized_read_stage(
          parent_id, plan.workload_name() + ":resend(" + nodes[static_cast<std::size_t>(parent_id)].name + ")");
      // Deserialize + partition the re-read data: cheap but not free.
      resend.cpu_ref_seconds += gib(resend.materialized_read_bytes) * 0.5;
      resend.records += static_cast<double>(resend.materialized_read_bytes) /
                        std::max(1.0, resend.record_size);
      src_stage = resend.id;
    }
    StagePlan& src = phys.stages[static_cast<std::size_t>(src_stage)];
    src.shuffle_write_bytes += write;
    // Map-side combine / pre-sort pass over the full parent volume.
    src.cpu_ref_seconds += gib(parent_bytes) * w.cpu_per_gib * kMapSideWorkShare;
    src.records += kMapSideWorkShare * static_cast<double>(parent_bytes) /
                   std::max(1.0, w.record_size);
    return src_stage;
  };

  for (const auto& n : nodes) {
    switch (n.kind) {
      case TransformKind::kSource: {
        StagePlan& s = new_stage(plan.workload_name() + ":" + n.name);
        s.source_read_bytes = scale_bytes(input_bytes, n.source_share);
        s.record_size = n.record_size;
        absorb(s, n, input_of(n));
        break;
      }
      case TransformKind::kBroadcastJoin: {
        const int big = n.parents[0];
        const int small = n.parents[1];
        StagePlan* s;
        if (pipelineable(big)) {
          s = &phys.stages[static_cast<std::size_t>(stage_of[static_cast<std::size_t>(big)])];
        } else {
          s = &materialized_read_stage(big, plan.workload_name() + ":" + n.name);
        }
        s->broadcast_bytes += bytes[static_cast<std::size_t>(small)];
        add_parent_stage(*s, stage_of[static_cast<std::size_t>(small)]);
        absorb(*s, n, input_of(n));
        break;
      }
      default: {
        if (is_wide(n.kind)) {
          // Collect shuffle feeds first so resend stages precede this stage.
          std::vector<std::pair<int, Bytes>> feeds;
          feeds.reserve(n.parents.size());
          for (const int p : n.parents) {
            const int src = shuffle_from(p, n);
            feeds.emplace_back(src,
                               scale_bytes(bytes[static_cast<std::size_t>(p)], n.map_side_factor));
          }
          StagePlan& s = new_stage(plan.workload_name() + ":" + n.name);
          for (const auto& [src, b] : feeds) {
            s.shuffle_inputs.push_back(ShuffleInput{src, b});
            add_parent_stage(s, src);
          }
          s.agg_memory_factor = std::max(s.agg_memory_factor, n.agg_memory_factor);
          s.record_size = n.record_size;
          // Reduce-side share of the node's work, over the shuffled volume.
          absorb(s, n, scale_bytes(s.shuffle_read_bytes(), 1.0 - kMapSideWorkShare));
        } else {
          const int p = n.parents[0];
          if (pipelineable(p)) {
            absorb(phys.stages[static_cast<std::size_t>(stage_of[static_cast<std::size_t>(p)])], n,
                   input_of(n));
          } else {
            StagePlan& s = materialized_read_stage(p, plan.workload_name() + ":" + n.name);
            absorb(s, n, input_of(n));
          }
        }
        break;
      }
    }
  }

  // Terminal action on the last node's stage.
  const auto& last = nodes.back();
  auto& final_stage = phys.stages[static_cast<std::size_t>(stage_of[static_cast<std::size_t>(last.id)])];
  final_stage.result_bytes =
      std::max<Bytes>(1, scale_bytes(bytes[static_cast<std::size_t>(last.id)],
                                     plan.result_selectivity()));
  return phys;
}

}  // namespace stune::dag
