#include "dag/rdd.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace stune::dag {

std::string to_string(TransformKind kind) {
  switch (kind) {
    case TransformKind::kSource: return "source";
    case TransformKind::kMap: return "map";
    case TransformKind::kFilter: return "filter";
    case TransformKind::kFlatMap: return "flatMap";
    case TransformKind::kMapPartitions: return "mapPartitions";
    case TransformKind::kReduceByKey: return "reduceByKey";
    case TransformKind::kGroupByKey: return "groupByKey";
    case TransformKind::kSortByKey: return "sortByKey";
    case TransformKind::kDistinct: return "distinct";
    case TransformKind::kJoin: return "join";
    case TransformKind::kBroadcastJoin: return "broadcastJoin";
    case TransformKind::kUnion: return "union";
  }
  return "unknown";
}

bool is_wide(TransformKind kind) {
  switch (kind) {
    case TransformKind::kReduceByKey:
    case TransformKind::kGroupByKey:
    case TransformKind::kSortByKey:
    case TransformKind::kDistinct:
    case TransformKind::kJoin:
    case TransformKind::kUnion:
      return true;
    default:
      return false;
  }
}

LogicalPlan::LogicalPlan(std::string workload_name, bool is_sql)
    : workload_name_(std::move(workload_name)), is_sql_(is_sql) {}

int LogicalPlan::add(RddNode node) {
  const int id = static_cast<int>(nodes_.size());
  node.id = id;
  if (node.kind == TransformKind::kSource) {
    if (!node.parents.empty()) throw std::invalid_argument("source node cannot have parents");
  } else if (node.parents.empty()) {
    throw std::invalid_argument("non-source node needs at least one parent: " + node.name);
  }
  for (const int p : node.parents) {
    if (p < 0 || p >= id) {
      throw std::invalid_argument("node " + node.name + " references invalid parent (plans are built parents-first)");
    }
  }
  const bool two_parent = node.kind == TransformKind::kJoin ||
                          node.kind == TransformKind::kBroadcastJoin ||
                          node.kind == TransformKind::kUnion;
  if (two_parent && node.parents.size() != 2) {
    throw std::invalid_argument(to_string(node.kind) + " needs exactly two parents: " + node.name);
  }
  if (!two_parent && node.kind != TransformKind::kSource && node.parents.size() != 1) {
    throw std::invalid_argument(to_string(node.kind) + " needs exactly one parent: " + node.name);
  }
  nodes_.push_back(std::move(node));
  return id;
}

int LogicalPlan::source(std::string name, double source_share, double cpu_per_gib,
                        double record_size) {
  RddNode n;
  n.name = std::move(name);
  n.kind = TransformKind::kSource;
  n.source_share = source_share;
  n.cpu_per_gib = cpu_per_gib;
  n.record_size = record_size;
  return add(std::move(n));
}

int LogicalPlan::narrow(TransformKind kind, std::string name, int parent, double selectivity,
                        double cpu_per_gib) {
  if (is_wide(kind)) throw std::invalid_argument("narrow(): " + to_string(kind) + " is wide");
  RddNode n;
  n.name = std::move(name);
  n.kind = kind;
  n.parents = {parent};
  n.selectivity = selectivity;
  n.cpu_per_gib = cpu_per_gib;
  n.record_size = node(parent).record_size;
  return add(std::move(n));
}

int LogicalPlan::wide(TransformKind kind, std::string name, std::vector<int> parents,
                      double selectivity, double cpu_per_gib, double map_side_factor,
                      double agg_memory_factor) {
  if (!is_wide(kind)) throw std::invalid_argument("wide(): " + to_string(kind) + " is narrow");
  RddNode n;
  n.name = std::move(name);
  n.kind = kind;
  n.parents = std::move(parents);
  n.selectivity = selectivity;
  n.cpu_per_gib = cpu_per_gib;
  n.map_side_factor = map_side_factor;
  n.agg_memory_factor = agg_memory_factor;
  n.record_size = node(n.parents.front()).record_size;
  return add(std::move(n));
}

void LogicalPlan::cache(int id) {
  nodes_.at(static_cast<std::size_t>(id)).cached = true;
}

void LogicalPlan::action(ActionKind kind, double result_selectivity) {
  if (nodes_.empty()) throw std::logic_error("action on empty plan");
  action_ = kind;
  result_selectivity_ = result_selectivity;
}

std::vector<std::vector<int>> LogicalPlan::children() const {
  std::vector<std::vector<int>> out(nodes_.size());
  for (const auto& n : nodes_) {
    for (const int p : n.parents) out[static_cast<std::size_t>(p)].push_back(n.id);
  }
  return out;
}

}  // namespace stune::dag
