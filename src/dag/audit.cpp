#include "dag/audit.hpp"

#include <cmath>
#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace stune::dag {

namespace {

template <typename... Args>
void report(std::vector<std::string>& out, Args&&... args) {
  std::ostringstream msg;
  (msg << ... << args);
  out.push_back(msg.str());
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

std::vector<std::string> audit(const PhysicalPlan& plan) {
  std::vector<std::string> v;
  if (plan.stages.empty()) {
    report(v, "plan '", plan.workload, "' has no stages");
    return v;
  }
  if (plan.input_bytes == 0) report(v, "plan input_bytes is zero");

  const auto n = static_cast<int>(plan.stages.size());
  for (int i = 0; i < n; ++i) {
    const StagePlan& s = plan.stages[static_cast<std::size_t>(i)];
    if (s.id != i) {
      report(v, "stage at position ", i, " has id ", s.id,
             " (stages must be topologically ordered with id == position)");
      continue;  // downstream id-based checks would misfire
    }

    std::set<int> seen_parents;
    for (const int p : s.parent_stages) {
      if (p < 0 || p >= n) {
        report(v, "stage ", i, " references out-of-range parent ", p);
      } else if (p == i) {
        report(v, "stage ", i, " depends on stage ", p, " (self-loop)");
      } else if (p > i && s.broadcast_bytes == 0) {
        // The broadcast-join planner legitimately parents a pipelined
        // consumer on a later broadcast-source stage; build_topology drops
        // such edges as non-scheduling. Anywhere else a back edge is a
        // cycle or broken topological order.
        report(v, "stage ", i, " depends on stage ", p,
               " (back edge: cycle or broken topological order)");
      }
      if (!seen_parents.insert(p).second) {
        report(v, "stage ", i, " lists parent ", p, " more than once");
      }
    }

    for (const auto& in : s.shuffle_inputs) {
      if (in.from_stage < 0 || in.from_stage >= n) {
        report(v, "stage ", i, " reads a shuffle from out-of-range stage ", in.from_stage);
        continue;
      }
      if (seen_parents.count(in.from_stage) == 0) {
        report(v, "stage barrier violation: stage ", i, " reads a shuffle from stage ",
               in.from_stage, " without listing it as a parent");
      }
    }

    if (!finite_nonneg(s.cpu_ref_seconds)) {
      report(v, "stage ", i, " has invalid cpu_ref_seconds ", s.cpu_ref_seconds);
    }
    if (!finite_nonneg(s.records)) report(v, "stage ", i, " has invalid records ", s.records);
    if (!finite_nonneg(s.skew_sigma)) {
      report(v, "stage ", i, " has invalid skew_sigma ", s.skew_sigma);
    }
    if (!(std::isfinite(s.record_size) && s.record_size > 0.0)) {
      report(v, "stage ", i, " has non-positive record_size ", s.record_size);
    }
    if (!finite_nonneg(s.recompute_cpu_per_gib)) {
      report(v, "stage ", i, " has invalid recompute_cpu_per_gib ", s.recompute_cpu_per_gib);
    }
    if (s.materialized_read_bytes == 0 && s.materialized_parent_cached) {
      report(v, "stage ", i, " claims a cached materialized parent but reads no bytes from it");
    }
  }

  // Shuffle conservation: everything a stage writes is read exactly once
  // downstream, and nothing is read that was never written.
  std::vector<Bytes> consumed(static_cast<std::size_t>(n), 0);
  for (const auto& s : plan.stages) {
    for (const auto& in : s.shuffle_inputs) {
      if (in.from_stage >= 0 && in.from_stage < n) {
        consumed[static_cast<std::size_t>(in.from_stage)] += in.bytes;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    const Bytes written = plan.stages[static_cast<std::size_t>(i)].shuffle_write_bytes;
    if (consumed[static_cast<std::size_t>(i)] != written) {
      report(v, "shuffle conservation violation: stage ", i, " wrote ", written,
             " bytes but consumers read ", consumed[static_cast<std::size_t>(i)]);
    }
  }
  return v;
}

}  // namespace stune::dag
