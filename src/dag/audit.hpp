// Invariant auditor for physical plans.
//
// Checks the structural properties build_physical_plan guarantees and the
// engine depends on: stages are topologically ordered and acyclic, shuffle
// edges respect stage barriers, and the per-stage cost annotations are
// finite and non-negative. Returns the violations instead of throwing so
// tests can inject broken plans and assert on what the auditor reports;
// pass the result through simcore::enforce_invariants for fail-stop use.
#pragma once

#include <string>
#include <vector>

#include "dag/plan.hpp"

namespace stune::dag {

/// Audit a physical plan. Empty result == all invariants hold.
///
/// Invariant catalog:
///  - plan has at least one stage; stage ids equal their position (the
///    topological order contract), so any parent reference p < id proves
///    acyclicity and any p >= id is a back/self edge;
///  - parent ids are in range and listed at most once;
///  - stage-barrier consistency: every ShuffleInput.from_stage is also a
///    parent stage (a stage cannot read a shuffle it does not wait for);
///  - shuffle conservation: the bytes consumers read from stage k sum to
///    exactly what stage k wrote (no shuffle data invented or lost);
///  - cost annotations (cpu_ref_seconds, records, skew_sigma, record_size,
///    recompute_cpu_per_gib) are finite and non-negative.
std::vector<std::string> audit(const PhysicalPlan& plan);

}  // namespace stune::dag
