// Physical execution plans: the logical lineage split into stages at wide
// (shuffle) dependencies, with data volumes propagated through transform
// selectivities — what Spark's DAGScheduler produces (paper Fig. 2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dag/rdd.hpp"
#include "simcore/units.hpp"

namespace stune::dag {

/// A shuffle dependency: this stage reads `bytes` (raw, uncompressed,
/// post-map-side-combine) produced by stage `from_stage`.
struct ShuffleInput {
  int from_stage = -1;
  Bytes bytes = 0;
};

struct StagePlan {
  int id = -1;
  std::string label;
  std::vector<int> rdd_ids;        // pipeline of RDDs computed by this stage
  std::vector<int> parent_stages;  // must finish before this stage starts

  // -- inputs -----------------------------------------------------------------
  /// Raw bytes read from distributed storage (source stages).
  Bytes source_read_bytes = 0;
  /// Bytes read from a materialized parent RDD (resend / iteration stages).
  Bytes materialized_read_bytes = 0;
  /// Whether that materialized parent was persisted; if false (or on cache
  /// miss) the engine charges lineage recomputation instead.
  bool materialized_parent_cached = false;
  /// CPU cost (ref-core s/GiB) of recomputing the materialized parent.
  double recompute_cpu_per_gib = 0.0;
  std::vector<ShuffleInput> shuffle_inputs;
  /// Broadcast variable received by every executor (small join side).
  Bytes broadcast_bytes = 0;

  // -- work -------------------------------------------------------------------
  /// Total CPU seconds on a reference core to execute the stage pipeline
  /// over its entire input (excludes ser/de/compression, which are config
  /// dependent and added by the engine).
  double cpu_ref_seconds = 0.0;
  /// Records processed (drives per-record overheads).
  double records = 0.0;
  /// Aggregation working set per shuffle-read byte (deserialized form).
  double agg_memory_factor = 0.0;
  /// Lognormal sigma of per-task input size (data/key skew).
  double skew_sigma = 0.2;
  double record_size = 100.0;

  // -- outputs ----------------------------------------------------------------
  Bytes shuffle_write_bytes = 0;
  Bytes cache_write_bytes = 0;
  /// Final stage only: bytes returned to the driver (collect) or written to
  /// storage (save).
  Bytes result_bytes = 0;

  bool reads_shuffle() const { return !shuffle_inputs.empty(); }
  bool reads_source() const { return source_read_bytes > 0; }
  Bytes shuffle_read_bytes() const;
  /// All bytes entering the stage, whatever the medium.
  Bytes total_input_bytes() const;
};

struct PhysicalPlan {
  std::string workload;
  bool is_sql = false;
  Bytes input_bytes = 0;
  ActionKind action = ActionKind::kSave;
  std::vector<StagePlan> stages;  // topological order

  /// Raw bytes of all distinct persisted RDDs (before serializer expansion).
  Bytes total_cache_bytes() const;
  Bytes total_shuffle_bytes() const;
  /// Multi-line human-readable rendering (used by the Fig. 2 bench).
  std::string describe() const;
  /// Stable hash over every field of the plan and all its stages; two plans
  /// with equal fingerprints describe the same simulated work. Keys cached
  /// execution reports.
  std::uint64_t fingerprint() const;
};

/// The stage graph of a physical plan in scheduler-ready form: indegrees
/// plus a children adjacency in CSR layout, built once and reused by every
/// trial of a batch (the engine's event-driven scheduler discovers ready
/// stages in O(edges) from it instead of rescanning the stage list).
struct PlanTopology {
  std::vector<int> indegree;       // parents outstanding per stage
  std::vector<int> child_offsets;  // CSR row starts into `children`, size stages+1
  std::vector<int> children;       // child stage ids, grouped by parent
  std::size_t edge_count = 0;
  /// topology_fingerprint(plan) of the plan this was built from.
  std::uint64_t fingerprint = 0;

  std::size_t stage_count() const { return indegree.size(); }
};

/// Build the topology. Requires stage ids equal to their positions and
/// parents in range; throws std::invalid_argument otherwise. Back edges
/// (a parent at or after its consumer — the broadcast-join planner emits
/// these) carry no scheduling constraint and are excluded, mirroring the
/// engine's id-order walk where an unfinished parent's finish time reads
/// as zero and the serialized run clock dominates it.
PlanTopology build_topology(const PhysicalPlan& plan);

/// Stable hash of the plan's *shape* as the scheduler sees it: stage count,
/// ids, parent edges and skew sigmas — everything PlanTopology and the
/// engine's cached per-stage draw streams depend on, and nothing else
/// (volumes may change per configuration without invalidating a topology).
std::uint64_t topology_fingerprint(const PhysicalPlan& plan);

/// Split a logical plan into sized stages for a concrete input size.
/// Throws std::invalid_argument on malformed plans.
PhysicalPlan build_physical_plan(const LogicalPlan& plan, Bytes input_bytes);

}  // namespace stune::dag
