// Logical RDD lineage plans.
//
// Mirrors Spark's programming model (paper §III-A, Fig. 2): a workload is a
// DAG of RDDs produced by transformations; an action at the end triggers a
// job. Nodes carry cost annotations (compute intensity, selectivity, shuffle
// behaviour) that the physical planner propagates into sized stages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace stune::dag {

using simcore::Bytes;

enum class TransformKind {
  kSource,         // read a dataset from distributed storage
  kMap,            // narrow 1:1
  kFilter,         // narrow, selectivity < 1
  kFlatMap,        // narrow, selectivity can exceed 1
  kMapPartitions,  // narrow, per-partition setup cost
  kReduceByKey,    // wide, map-side combine shrinks shuffle volume
  kGroupByKey,     // wide, no combine: full data shuffled & held
  kSortByKey,      // wide, range partitioning + sort buffers
  kDistinct,       // wide
  kJoin,           // wide, two parents (both shuffled)
  kBroadcastJoin,  // narrow on the big side; small side broadcast
  kUnion,          // pass-through repartition of two parents
};

std::string to_string(TransformKind kind);

/// True if the transform requires a shuffle of its (big-side) input.
bool is_wide(TransformKind kind);

enum class ActionKind {
  kCollect,  // results return to the driver (bounded by driver memory)
  kSave,     // results written back to distributed storage
  kCount,    // negligible result size
};

/// One RDD in the lineage graph, with the cost annotations of the transform
/// that produces it.
struct RddNode {
  int id = -1;
  std::string name;
  TransformKind kind = TransformKind::kMap;
  std::vector<int> parents;  // ids; for kJoin: [big, small] order irrelevant,
                             // for kBroadcastJoin: [big, small]

  /// Persisted in executor storage memory once computed.
  bool cached = false;

  /// Compute intensity: reference-core seconds per GiB of node *input*.
  double cpu_per_gib = 4.0;
  /// Output bytes / input bytes (input = sum over parents; for source, the
  /// dataset size supplied when instantiating the plan).
  double selectivity = 1.0;
  /// Shuffle-write bytes / input bytes for wide nodes (models map-side
  /// combining: ~0.05 for word counting, 1.0 for sort/groupByKey).
  double map_side_factor = 1.0;
  /// Aggregation working set per shuffle-read byte for wide nodes (in
  /// deserialized form): groupByKey holds everything (~1), reduceByKey only
  /// distinct keys (~0.05-0.3), sort holds its buffers (~1).
  double agg_memory_factor = 0.0;
  /// Lognormal sigma of per-partition size (data/key skew).
  double skew_sigma = 0.2;
  /// Average record size in bytes (drives per-record CPU overheads).
  double record_size = 100.0;
  /// For kSource: fraction of the workload's nominal input this source reads.
  double source_share = 1.0;
};

/// A lineage DAG under construction. Nodes must be added parents-first, so
/// node ids are already a topological order.
class LogicalPlan {
 public:
  explicit LogicalPlan(std::string workload_name, bool is_sql = false);

  /// Adds a node; fills in node.id; validates parent references.
  /// Returns the node id.
  int add(RddNode node);

  // Convenience builders -------------------------------------------------------
  int source(std::string name, double source_share = 1.0, double cpu_per_gib = 1.0,
             double record_size = 100.0);
  int narrow(TransformKind kind, std::string name, int parent, double selectivity,
             double cpu_per_gib);
  int wide(TransformKind kind, std::string name, std::vector<int> parents, double selectivity,
           double cpu_per_gib, double map_side_factor, double agg_memory_factor);

  /// Mark a node as persisted.
  void cache(int id);
  /// Set the terminal action. Must reference the last added node.
  void action(ActionKind kind, double result_selectivity = 1.0);

  const std::string& workload_name() const { return workload_name_; }
  bool is_sql() const { return is_sql_; }
  const std::vector<RddNode>& nodes() const { return nodes_; }
  const RddNode& node(int id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  /// Mutable access for generators that tweak annotations after adding
  /// (e.g. per-workload skew overrides).
  RddNode& mutable_node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
  ActionKind action_kind() const { return action_; }
  /// Output bytes of the action relative to the final RDD's bytes.
  double result_selectivity() const { return result_selectivity_; }

  /// Ids of children per node (computed on demand).
  std::vector<std::vector<int>> children() const;

 private:
  std::string workload_name_;
  bool is_sql_;
  std::vector<RddNode> nodes_;
  ActionKind action_ = ActionKind::kSave;
  double result_selectivity_ = 1.0;
};

}  // namespace stune::dag
