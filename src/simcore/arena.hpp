// Bump-allocated scratch memory for the simulation hot path.
//
// The engine used to allocate a fresh std::vector per stage for task
// durations and a fresh priority-queue backing store per schedule; over a
// tuning batch that is thousands of short-lived heap round trips whose
// contents never outlive one trial. TrialArena replaces them: one growable
// block of bytes, handed out as typed spans by bumping an offset, and
// reclaimed all at once by reset() between trials. Allocation is a pointer
// add on the hot path; reset() is O(1) and keeps the high-water capacity,
// so a warmed arena never touches the system allocator again.
//
// Not thread-safe: one arena belongs to one trial at a time (the
// disc::TrialContextPool hands each worker its own).
//
// Use-after-reset validation (the STUNE_ARENA_POISON build option, runtime
// complement of stune_analyze's static arena-escape pass): under ASan the
// arena poisons its unallocated tail and everything reset() frees, and
// unpoisons exactly the bytes each alloc hands out, so dereferencing a
// stale span aborts with a use-after-poison report. Without ASan it fills
// the same bytes with a magic pattern and verifies it on the next alloc, so
// a stale *write* fails a STUNE_CHECK deterministically.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#if defined(STUNE_ARENA_POISON)
#if defined(__SANITIZE_ADDRESS__)
#define STUNE_ARENA_POISON_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STUNE_ARENA_POISON_ASAN 1
#endif
#endif
#endif

namespace stune::simcore {

/// How the arena validates use-after-reset, fixed at compile time by the
/// STUNE_ARENA_POISON option: kAsan poisons freed and not-yet-allocated
/// bytes (stale reads and writes abort), kMagic fills them with a pattern
/// checked on the next alloc (stale writes throw CheckError), kOff neither.
enum class ArenaPoisonMode { kOff, kMagic, kAsan };

class TrialArena {
 public:
  /// `initial_bytes` sizes the first block; the arena grows geometrically
  /// beyond it, so the value only tunes how fast the warm-up converges.
  explicit TrialArena(std::size_t initial_bytes = 1 << 16);
  ~TrialArena();

  TrialArena(const TrialArena&) = delete;
  TrialArena& operator=(const TrialArena&) = delete;

  /// A span of `count` value-initialized (zeroed) elements of trivial type
  /// T, aligned for T, valid until the next reset(). count == 0 yields an
  /// empty span without consuming arena space.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivial_v<T>, "arena spans are raw trial scratch");
    if (count == 0) return {};
    void* raw = allocate(count * sizeof(T), alignof(T));
    T* data = static_cast<T*>(raw);
    for (std::size_t i = 0; i < count; ++i) data[i] = T{};
    return {data, count};
  }

  /// Invalidate every span handed out since the last reset and make the
  /// full capacity available again. If the trial overflowed into spill
  /// blocks, they are coalesced into one block sized for the observed
  /// high-water mark, so steady state is a single contiguous block.
  void reset();

  /// Bytes handed out since the last reset (alignment padding included).
  std::size_t used() const { return used_; }
  /// Largest used() observed over the arena's lifetime.
  std::size_t high_water() const { return high_water_; }
  /// Total bytes owned across all blocks.
  std::size_t capacity() const { return capacity_; }

  /// The validation mode this build compiled in.
  static constexpr ArenaPoisonMode poison_mode() {
#if defined(STUNE_ARENA_POISON_ASAN)
    return ArenaPoisonMode::kAsan;
#elif defined(STUNE_ARENA_POISON)
    return ArenaPoisonMode::kMagic;
#else
    return ArenaPoisonMode::kOff;
#endif
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t size = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align);
  void add_block(std::size_t at_least);

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;  // block currently being bumped
  std::size_t offset_ = 0;       // bump offset within that block
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace stune::simcore
