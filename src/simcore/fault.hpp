// Deterministic fault injection.
//
// Elastic clouds are exactly where tuning trials die: spot capacity gets
// revoked, executors crash, tasks straggle, and submissions hit transient
// infrastructure errors. This module schedules those events *by seed*: a
// FaultInjector is a pure function from (seed, trial fingerprint, attempt)
// to a FaultPlan, and a FaultPlan is a pure function from (stage, fleet
// state) to the faults that strike that stage. Nothing here holds mutable
// state, so the same seed reproduces the same faults bitwise and an
// evaluation gives identical results whether it runs on 1 worker or N.
//
// Retry attempts get fresh draws (the attempt index is folded into the
// plan's stream), which is what makes retrying an infra fault meaningful:
// attempt 2 of the same trial sees a different — but still deterministic —
// fault schedule.
#pragma once

#include <cstdint>

#include "simcore/rng.hpp"

namespace stune::simcore {

/// Taxonomy of injected faults. Executor loss and stragglers are survivable
/// (the engine recovers and records the cost); spot revocation permanently
/// shrinks the fleet; transient errors and timeouts kill the whole trial
/// and are classified as infrastructure faults upstream.
enum class FaultKind {
  kExecutorLoss,    // executor process dies mid-stage; respawned after
  kSpotRevocation,  // spot VM reclaimed; permanent for the rest of the run
  kStraggler,       // a burst of tasks runs straggler_slowdown times slower
  kTransientError,  // the trial aborts with a transient submission error
  kTimeout,         // the trial hangs past any useful deadline
};

/// Rates of the injected fault mix. All draws are per-plan deterministic;
/// rates are probabilities per the unit noted on each field.
struct FaultProfile {
  /// Probability that any given live executor dies during a stage.
  double executor_loss_rate = 0.0;
  /// Baseline probability that a live spot VM is revoked during a stage
  /// (multiplied by the instance family's hazard weight; zero effect on
  /// on-demand clusters).
  double spot_revocation_rate = 0.0;
  /// Probability that a stage suffers a straggler burst.
  double straggler_rate = 0.0;
  /// Slowdown factor applied to afflicted tasks during a burst.
  double straggler_slowdown = 4.0;
  /// Fraction of a stage's tasks hit by a burst.
  double straggler_victim_fraction = 0.2;
  /// Probability that a whole trial aborts with a transient error.
  double transient_error_rate = 0.0;
  /// Probability that a whole trial hangs (classified as a timeout).
  double timeout_rate = 0.0;
  /// A hung trial burns this multiple of its nominal progress in time.
  double timeout_hang_factor = 8.0;

  /// True when any rate is non-zero (i.e. injecting this profile can
  /// change an execution).
  bool active() const;

  /// Stable hash over every field; folded into the engine's context
  /// fingerprint so cached reports never alias across fault profiles.
  std::uint64_t fingerprint() const;

  static FaultProfile none() { return {}; }

  /// Canonical chaos mix where `level` is approximately the per-trial
  /// infrastructure-fault probability (0.15 = "15% fault rate"). Survivable
  /// faults (executor loss, stragglers, revocations) scale along.
  static FaultProfile chaos(double level);
};

/// Faults striking one stage, given the fleet state when it starts.
struct StageFaults {
  int lost_executors = 0;      // processes that die this stage (respawned)
  int lost_vms = 0;            // spot VMs revoked this stage (permanent)
  double straggler_factor = 1.0;  // > 1 when a burst hits this stage
};

/// The deterministic fault schedule of one trial attempt. Value type;
/// default-constructed plans are inactive and inject nothing.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultProfile& profile, std::uint64_t stream);

  bool active() const { return active_; }
  const FaultProfile& profile() const { return profile_; }
  std::uint64_t fingerprint() const;

  /// Trial-level events, drawn once at construction.
  bool transient_error() const { return transient_error_; }
  /// Where the transient error strikes, as a fraction of stages completed.
  double error_position() const { return error_position_; }
  bool timeout() const { return timeout_; }

  /// Stage-level events. Pure in (this, arguments): callers may invoke in
  /// any order or repeatedly and get the same answer. `vm_hazard_weight`
  /// is 0 for on-demand clusters, the family's spot hazard otherwise.
  StageFaults stage_faults(int stage_id, int executors_alive, int vms_alive,
                           double vm_hazard_weight) const;

  /// Independent per-stage substream for auxiliary draws (e.g. picking
  /// straggler victims) that must not disturb the engine's own streams.
  Rng stage_stream(int stage_id, std::uint64_t tag) const;

 private:
  FaultProfile profile_{};
  std::uint64_t stream_ = 0;
  bool active_ = false;
  bool transient_error_ = false;
  double error_position_ = 0.0;
  bool timeout_ = false;
};

/// Factory of FaultPlans: one per (trial fingerprint, attempt). Stateless
/// apart from its construction parameters, hence safe to share across
/// threads and to rebuild anywhere — two injectors with equal (profile,
/// seed) produce bitwise-equal plans.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, std::uint64_t seed);

  /// The fault schedule of one trial attempt. Deterministic in
  /// (this->seed, trial_fingerprint, attempt); attempts re-roll the faults
  /// so retrying an infra fault can succeed.
  FaultPlan plan(std::uint64_t trial_fingerprint, int attempt = 0) const;

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultProfile profile_;
  std::uint64_t seed_;
};

}  // namespace stune::simcore
