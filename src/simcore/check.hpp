// Contract checking: the project's replacement for bare assert().
//
// Three macro families, all of which capture the failed expression text and
// the file:line where it fired, and allow streaming extra context:
//
//   STUNE_CHECK(cond) << "context";       always on, any build type
//   STUNE_DCHECK(cond) << "context";      on unless NDEBUG (hot paths)
//   STUNE_INVARIANT(cond) << "context";   always on, tagged as an invariant
//                                          (used by the audit subsystem)
//
// Binary comparison forms additionally format both operands into the
// failure message, so "expected a <= b" failures show the actual values:
//
//   STUNE_CHECK_EQ(a, b)   STUNE_CHECK_NE(a, b)
//   STUNE_CHECK_LT(a, b)   STUNE_CHECK_LE(a, b)
//   STUNE_CHECK_GT(a, b)   STUNE_CHECK_GE(a, b)
//
// A failed check throws simcore::CheckError (a std::logic_error) rather
// than aborting: the tuning service treats a contract violation in one
// simulated execution as a failed execution, not a dead process, and tests
// can assert on violations directly. Unlike assert(), STUNE_CHECK stays on
// in release builds — the simulator substrate is the measurement instrument
// every tuner comparison rests on, so it must fail loudly, not silently.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stune::simcore {

/// Thrown when a STUNE_CHECK / STUNE_DCHECK / STUNE_INVARIANT fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& message) : std::logic_error(message) {}
};

/// Whether runtime invariant audits (the audit() entry points the engine
/// calls at stage boundaries) are enabled. Defaults to the STUNE_AUDIT
/// environment variable ("1"/"on"/"true", read once); set_audit_enabled
/// overrides it for the process (tests, long-running services).
bool audit_enabled();
void set_audit_enabled(bool enabled);

/// Throw CheckError listing every violation if the list is non-empty.
/// The convention used by the per-subsystem audit() entry points: they
/// *return* violations (so tests can inspect them), and callers that want
/// fail-stop semantics pass the result through enforce_invariants.
void enforce_invariants(const std::vector<std::string>& violations, std::string_view subject);

namespace check_detail {

/// Accumulates the failure message; throws CheckError from its destructor,
/// which runs at the end of the full expression — after any streamed
/// context has been appended.
class Failure {
 public:
  Failure(const char* kind, const char* expr, const char* file, int line);
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;
  [[noreturn]] ~Failure() noexcept(false);

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lowest-precedence void sink so the ternary in STUNE_CHECK type-checks:
/// binary & binds looser than <<, so every streamed chain collapses to void.
struct Voidify {
  void operator&(std::ostream&) const {}
};

template <typename T>
void format_operand(std::ostream& os, const T& v) {
  os << v;
}
// Print bools/chars as values, not mangled stream defaults.
inline void format_operand(std::ostream& os, bool v) { os << (v ? "true" : "false"); }

template <typename A, typename B>
std::ostream& binary_failure(Failure& f, const A& a, const B& b) {
  f.stream() << " [";
  format_operand(f.stream(), a);
  f.stream() << " vs ";
  format_operand(f.stream(), b);
  f.stream() << "]";
  return f.stream();
}

}  // namespace check_detail
}  // namespace stune::simcore

#define STUNE_CHECK_IMPL(kind, cond)                                            \
  (static_cast<bool>(cond))                                                     \
      ? (void)0                                                                 \
      : ::stune::simcore::check_detail::Voidify() &                             \
            ::stune::simcore::check_detail::Failure(kind, #cond, __FILE__, __LINE__).stream()

#define STUNE_CHECK(cond) STUNE_CHECK_IMPL("STUNE_CHECK", cond)
#define STUNE_INVARIANT(cond) STUNE_CHECK_IMPL("STUNE_INVARIANT", cond)

#ifdef NDEBUG
// Compiled out, but still odr-uses the expression so it cannot rot.
#define STUNE_DCHECK(cond)                                   \
  (true || static_cast<bool>(cond))                          \
      ? (void)0                                              \
      : ::stune::simcore::check_detail::Voidify() &          \
            ::stune::simcore::check_detail::Failure("STUNE_DCHECK", #cond, __FILE__, __LINE__).stream()
#else
#define STUNE_DCHECK(cond) STUNE_CHECK_IMPL("STUNE_DCHECK", cond)
#endif

// Binary comparisons with operand capture. Implemented as an immediately
// invoked lambda so operands are evaluated exactly once and remain usable
// in the failure message.
#define STUNE_CHECK_OP_IMPL(opname, op, a, b)                                         \
  [&](const auto& stune_lhs_, const auto& stune_rhs_) {                               \
    if (stune_lhs_ op stune_rhs_) return;                                             \
    ::stune::simcore::check_detail::Failure f_("STUNE_CHECK_" opname, #a " " #op " " #b, \
                                               __FILE__, __LINE__);                   \
    ::stune::simcore::check_detail::binary_failure(f_, stune_lhs_, stune_rhs_);       \
  }((a), (b))

#define STUNE_CHECK_EQ(a, b) STUNE_CHECK_OP_IMPL("EQ", ==, a, b)
#define STUNE_CHECK_NE(a, b) STUNE_CHECK_OP_IMPL("NE", !=, a, b)
#define STUNE_CHECK_LT(a, b) STUNE_CHECK_OP_IMPL("LT", <, a, b)
#define STUNE_CHECK_LE(a, b) STUNE_CHECK_OP_IMPL("LE", <=, a, b)
#define STUNE_CHECK_GT(a, b) STUNE_CHECK_OP_IMPL("GT", >, a, b)
#define STUNE_CHECK_GE(a, b) STUNE_CHECK_OP_IMPL("GE", >=, a, b)
