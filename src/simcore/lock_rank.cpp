#include "simcore/lock_rank.hpp"

#include <cstddef>
#include <vector>

#include "simcore/check.hpp"

namespace stune::simcore::lock_rank {

namespace {

struct Held {
  const void* mu;
  int rank;
};

// The held stack is tiny (lock nesting depth, <= 3 in this codebase), so a
// flat vector with linear scans beats any cleverer structure.
thread_local std::vector<Held> held_stack;

}  // namespace

void on_acquire(const void* mu, int rank) {
  for (const Held& h : held_stack) {
    STUNE_CHECK(h.mu != mu)
        << "lock-rank: re-acquiring a mutex this thread already holds (rank " << rank
        << ") — guaranteed self-deadlock";
    if (rank != kUnranked && h.rank != kUnranked) {
      STUNE_CHECK(h.rank < rank)
          << "lock-rank: acquiring rank " << rank << " while holding rank " << h.rank
          << "; ranked mutexes must be acquired in strictly increasing rank order "
             "(see the table in simcore/lock_rank.hpp)";
    }
  }
  held_stack.push_back({mu, rank});
}

void on_try_acquire(const void* mu, int rank) noexcept {
  held_stack.push_back({mu, rank});
}

void on_release(const void* mu) noexcept {
  // Releases are LIFO in practice (every critical section is RAII), but a
  // reverse scan keeps the bookkeeping correct for hand-over-hand patterns.
  for (std::size_t i = held_stack.size(); i > 0; --i) {
    if (held_stack[i - 1].mu == mu) {
      held_stack.erase(held_stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

std::size_t held_count() noexcept { return held_stack.size(); }

int max_held_rank() noexcept {
  int rank = kUnranked;
  for (const Held& h : held_stack) {
    if (h.rank > rank) rank = h.rank;
  }
  return rank;
}

}  // namespace stune::simcore::lock_rank
