// Annotated mutex primitives for the concurrent tuning surface.
//
// simcore::Mutex is std::mutex wearing the Clang thread-safety-analysis
// capability attributes (thread_annotations.hpp); simcore::MutexLock is the
// RAII guard the analysis understands; simcore::CondVar is a condition
// variable that waits on a Mutex. Code on the concurrent surface uses these
// instead of the std types directly because libstdc++'s std::mutex carries
// no annotations — locking it is invisible to the analysis, so guarded
// members could be touched unguarded without a diagnostic.
//
// Waiting pattern: the analysis cannot see through wait predicates (a
// lambda is analyzed as its own function, outside the critical section), so
// waits are written as explicit loops where the guarded reads are visibly
// under the lock:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);
//
// Lock ranks: a Mutex may be constructed with an integer rank from
// simcore/lock_rank.hpp declaring its position in the global acquisition
// order. Under the STUNE_DEBUG_LOCK_RANK build option every lock()/unlock()
// is checked against a thread-local held-rank stack and an out-of-order
// acquisition fails a STUNE_CHECK immediately — the runtime complement of
// stune_analyze's static lock-order pass. Without the option the rank is a
// stored int and the checks compile away.
#pragma once

#include <condition_variable>
#include <mutex>

#include "simcore/lock_rank.hpp"
#include "simcore/thread_annotations.hpp"

namespace stune::simcore {

class CondVar;

/// std::mutex with capability annotations. Lock through MutexLock; the raw
/// lock()/unlock() exist for the guard and CondVar only.
class STUNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex participates in the lock-order validation (see
  /// simcore/lock_rank.hpp for the rank table).
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STUNE_ACQUIRE() {                          // stune-lint: allow(lock-discipline)
#if defined(STUNE_DEBUG_LOCK_RANK)
    // Checked before the native lock: a rank violation throws with the
    // underlying mutex still unlocked, so the failure is recoverable.
    lock_rank::on_acquire(this, rank_);
#endif
    mu_.lock();                                          // stune-lint: allow(lock-discipline)
  }
  void unlock() STUNE_RELEASE() {
    mu_.unlock();                                        // stune-lint: allow(lock-discipline)
#if defined(STUNE_DEBUG_LOCK_RANK)
    lock_rank::on_release(this);
#endif
  }
  bool try_lock() STUNE_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();                // stune-lint: allow(lock-discipline)
#if defined(STUNE_DEBUG_LOCK_RANK)
    if (acquired) lock_rank::on_try_acquire(this, rank_);
#endif
    return acquired;
  }

  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_ = lock_rank::kUnranked;
};

/// RAII critical section over a simcore::Mutex.
class STUNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STUNE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }  // stune-lint: allow(lock-discipline)
  ~MutexLock() STUNE_RELEASE() { mu_.unlock(); }         // stune-lint: allow(lock-discipline)

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over simcore::Mutex. wait() atomically releases the
/// mutex while parked and re-acquires before returning, exactly like
/// std::condition_variable — the caller holds the lock across the call from
/// the analysis's point of view, which matches the visible state at every
/// sequence point in the caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) STUNE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the guard in the caller's frame
    // remains the sole owner. The body touches only the unannotated
    // std::mutex, so no analysis diagnostics can arise here.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace stune::simcore
