// Deterministic random number generation for the simulator.
//
// Everything stochastic in stune is driven by an explicit Rng instance so
// that a given (seed, workload, configuration) triple always produces the
// same simulated execution. The engine is xoshiro256**, seeded through
// SplitMix64 as its authors recommend; `fork()` derives statistically
// independent substreams so components can be given their own generator
// without coupling their consumption order.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace stune::simcore {

/// SplitMix64 step; used for seeding and for hashing ids into seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a string (FNV-1a finished with SplitMix64).
std::uint64_t hash_string(std::string_view s);

/// Combine two 64-bit values into one seed (order sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// Stable 64-bit hash of a double's bit pattern. Bitwise, so -0.0 and 0.0
/// hash differently — callers comparing "the same value" must canonicalize.
std::uint64_t hash_double(double v);

/// Bitwise identity of two doubles: the approved exact-FP-equality idiom
/// (stune_analyze's fp-compare rule flags raw ==/!= instead). Same contract
/// as hash_double — -0.0 != 0.0, NaN payloads compare by bits — so "is this
/// exactly the value I wrote" reads as what it is, not as a rounding bug.
bool bits_equal(double a, double b);

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Derive an independent substream; deterministic in (this state, tag).
  /// Does not advance this generator.
  Rng fork(std::uint64_t tag) const;
  Rng fork(std::string_view tag) const { return fork(hash_string(tag)); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (no cached spare: keeps forks exact).
  double normal();
  double normal(double mean, double stddev);
  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Exponential with rate lambda.
  double exponential(double lambda);
  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace stune::simcore
