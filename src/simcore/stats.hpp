// Streaming and batch statistics used across the simulator, tuners and
// change detectors.
#pragma once

#include <cstddef>
#include <vector>

namespace stune::simcore {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average with bias-corrected warm-up.
class Ewma {
 public:
  /// alpha in (0, 1]; larger alpha adapts faster.
  explicit Ewma(double alpha);

  void add(double x);
  bool empty() const { return n_ == 0; }
  double value() const;
  std::size_t count() const { return n_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  double weight_ = 0.0;  // sum of decayed weights, for bias correction
  std::size_t n_ = 0;
};

/// Percentile of a sample by linear interpolation; p in [0, 100].
/// The input is copied; use percentile_sorted if data is already sorted.
double percentile(std::vector<double> values, double p);

/// Percentile of an ascending-sorted sample.
double percentile_sorted(const std::vector<double>& sorted, double p);

double mean_of(const std::vector<double>& values);
double stddev_of(const std::vector<double>& values);

/// Pearson correlation; 0 if either side has no variance.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace stune::simcore
