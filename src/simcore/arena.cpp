#include "simcore/arena.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>

#include "simcore/check.hpp"

namespace stune::simcore {

TrialArena::TrialArena(std::size_t initial_bytes) {
  add_block(std::max<std::size_t>(initial_bytes, 64));
}

void TrialArena::add_block(std::size_t at_least) {
  // Geometric growth over the whole capacity keeps the number of spill
  // blocks logarithmic in the trial's peak demand.
  const std::size_t size = std::max(at_least, capacity_);
  Block b;
  b.bytes = std::make_unique<std::byte[]>(size);
  b.size = size;
  capacity_ += size;
  blocks_.push_back(std::move(b));
}

void* TrialArena::allocate(std::size_t bytes, std::size_t align) {
  STUNE_CHECK_GT(align, 0u);
  Block* block = &blocks_[block_index_];
  std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
  if (aligned + bytes > block->size) {
    // Try the remaining blocks (left over from a previous fat trial),
    // then grow.
    while (aligned + bytes > block->size) {
      if (block_index_ + 1 == blocks_.size()) add_block(std::max(bytes + align, capacity_));
      ++block_index_;
      block = &blocks_[block_index_];
      offset_ = 0;
      aligned = (align - 1) & ~(align - 1);  // == 0; kept for symmetry
    }
  }
  used_ += (aligned - offset_) + bytes;
  high_water_ = std::max(high_water_, used_);
  offset_ = aligned + bytes;
  return block->bytes.get() + aligned;
}

void TrialArena::reset() {
  if (blocks_.size() > 1) {
    // Coalesce: one block sized for the high-water mark replaces the spill
    // chain, so the next trial bump-allocates contiguously.
    blocks_.clear();
    capacity_ = 0;
    add_block(high_water_);
  }
  block_index_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace stune::simcore
