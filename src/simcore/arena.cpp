#include "simcore/arena.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

#include "simcore/check.hpp"

#if defined(STUNE_ARENA_POISON_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace stune::simcore {

namespace {

// 0xA5 rather than 0x00/0xFF: a zeroed stale write would pass a zero
// pattern, and all-ones looks like a plausible sentinel; 0xA5 matches
// neither common accident.
constexpr std::byte kMagic{0xA5};

/// Mark [p, p + n) as freed/never-allocated under the active poison mode.
void poison(std::byte* p, std::size_t n) {
  if (n == 0) return;
#if defined(STUNE_ARENA_POISON_ASAN)
  __asan_poison_memory_region(p, n);
#elif defined(STUNE_ARENA_POISON)
  std::memset(p, static_cast<int>(kMagic), n);
#else
  (void)p;
#endif
}

/// Hand [p, p + n) back out: unpoison under ASan, verify the magic pattern
/// survived otherwise. A failed check means some code wrote through a span
/// from before the last reset().
void unpoison_for_alloc(std::byte* p, std::size_t n) {
#if defined(STUNE_ARENA_POISON_ASAN)
  __asan_unpoison_memory_region(p, n);
#elif defined(STUNE_ARENA_POISON)
  for (std::size_t i = 0; i < n; ++i) {
    STUNE_CHECK(p[i] == kMagic);  // stale write through a pre-reset() span
  }
#else
  (void)p;
#endif
  (void)n;
}

/// Make [p, p + n) plain memory again before handing it to the system
/// allocator (freeing manually-poisoned bytes confuses ASan's quarantine).
void unpoison_for_release(std::byte* p, std::size_t n) {
#if defined(STUNE_ARENA_POISON_ASAN)
  __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

}  // namespace

TrialArena::TrialArena(std::size_t initial_bytes) {
  add_block(std::max<std::size_t>(initial_bytes, 64));
}

TrialArena::~TrialArena() {
  for (Block& b : blocks_) unpoison_for_release(b.bytes.get(), b.size);
}

void TrialArena::add_block(std::size_t at_least) {
  // Geometric growth over the whole capacity keeps the number of spill
  // blocks logarithmic in the trial's peak demand.
  const std::size_t size = std::max(at_least, capacity_);
  Block b;
  b.bytes = std::make_unique<std::byte[]>(size);
  b.size = size;
  capacity_ += size;
  poison(b.bytes.get(), b.size);
  blocks_.push_back(std::move(b));
}

void* TrialArena::allocate(std::size_t bytes, std::size_t align) {
  STUNE_CHECK_GT(align, 0u);
  Block* block = &blocks_[block_index_];
  // Align the absolute address, not the bump offset: new[] only guarantees
  // __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the block base, so for over-aligned
  // types an offset-aligned span could still start at a misaligned address.
  const auto align_in = [align](const Block& b, std::size_t offset) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.bytes.get());
    const std::uintptr_t addr = (base + offset + align - 1) & ~(align - 1);
    return static_cast<std::size_t>(addr - base);
  };
  std::size_t aligned = align_in(*block, offset_);
  if (aligned + bytes > block->size) {
    // Try the remaining blocks (left over from a previous fat trial),
    // then grow.
    while (aligned + bytes > block->size) {
      if (block_index_ + 1 == blocks_.size()) add_block(std::max(bytes + align, capacity_));
      ++block_index_;
      block = &blocks_[block_index_];
      offset_ = 0;
      aligned = align_in(*block, 0);
    }
  }
  used_ += (aligned - offset_) + bytes;
  high_water_ = std::max(high_water_, used_);
  offset_ = aligned + bytes;
  std::byte* out = block->bytes.get() + aligned;
  unpoison_for_alloc(out, bytes);
  return out;
}

void TrialArena::reset() {
  if (blocks_.size() > 1) {
    // Coalesce: one block sized for the high-water mark replaces the spill
    // chain, so the next trial bump-allocates contiguously.
    for (Block& b : blocks_) unpoison_for_release(b.bytes.get(), b.size);
    blocks_.clear();
    capacity_ = 0;
    add_block(high_water_);
  } else {
    // Everything handed out this trial is dead: poison the used prefix so a
    // surviving span fails loudly instead of silently reading recycled
    // bytes. (The tail past offset_ is still poisoned from add_block.)
    poison(blocks_[0].bytes.get(), offset_);
  }
  block_index_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace stune::simcore
