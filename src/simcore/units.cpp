#include "simcore/units.hpp"

#include <array>
#include <cstddef>
#include <cstdio>
#include <string>

namespace stune::simcore {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 5> suffixes = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(b);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < suffixes.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, suffixes[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
  }
  return buf;
}

std::string format_seconds(Seconds s) {
  char buf[48];
  if (s < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else if (s < 3600.0) {
    const int m = static_cast<int>(s / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm %.1fs", m, s - 60.0 * m);
  } else {
    const int h = static_cast<int>(s / 3600.0);
    const int m = static_cast<int>((s - 3600.0 * h) / 60.0);
    std::snprintf(buf, sizeof(buf), "%dh %dm %.0fs", h, m, s - 3600.0 * h - 60.0 * m);
  }
  return buf;
}

}  // namespace stune::simcore
