#include "simcore/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

#include "simcore/check.hpp"

namespace stune::simcore {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN(); }

double RunningStats::max() const { return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN(); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha <= 1.0)) throw std::invalid_argument("Ewma: alpha must be in (0,1]");
}

void Ewma::add(double x) {
  value_ = (1.0 - alpha_) * value_ + alpha_ * x;
  weight_ = (1.0 - alpha_) * weight_ + alpha_;
  ++n_;
}

double Ewma::value() const {
  if (n_ == 0) return 0.0;
  return value_ / weight_;  // bias correction for the warm-up period
}

void Ewma::reset() {
  value_ = 0.0;
  weight_ = 0.0;
  n_ = 0;
}

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("percentile of empty sample");
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, p);
}

double mean_of(const std::vector<double>& values) {
  RunningStats s;
  for (const double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  RunningStats s;
  for (const double v : values) s.add(v);
  return s.stddev();
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  STUNE_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace stune::simcore
