#include "simcore/check.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace stune::simcore {

namespace {

/// -1 = not forced, follow the environment; 0/1 = forced off/on.
std::atomic<int> g_audit_override{-1};

bool audit_env_enabled() {
  const char* v = std::getenv("STUNE_AUDIT");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "ON") == 0 || std::strcmp(v, "TRUE") == 0;
}

}  // namespace

bool audit_enabled() {
  const int forced = g_audit_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = audit_env_enabled();
  return from_env;
}

void set_audit_enabled(bool enabled) {
  g_audit_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void enforce_invariants(const std::vector<std::string>& violations, std::string_view subject) {
  if (violations.empty()) return;
  std::ostringstream msg;
  msg << "STUNE_INVARIANT failed: " << subject << " violates " << violations.size()
      << " invariant" << (violations.size() == 1 ? "" : "s") << ":";
  for (const auto& v : violations) msg << "\n  - " << v;
  throw CheckError(msg.str());
}

namespace check_detail {

Failure::Failure(const char* kind, const char* expr, const char* file, int line) {
  // Trim directories so messages are stable across checkouts.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/' || *p == '\\') base = p + 1;
  }
  stream_ << kind << " failed at " << base << ":" << line << ": (" << expr << ")";
}

Failure::~Failure() noexcept(false) {
  throw CheckError(stream_.str());
}

}  // namespace check_detail

}  // namespace stune::simcore
