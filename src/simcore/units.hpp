// Units and quantity helpers shared across the simulator.
//
// The simulator works in SI-ish base units: seconds for time, bytes for
// data, bytes/second for bandwidth, US dollars for cost. We keep these as
// plain doubles/integers (the hot path is arithmetic-heavy), but centralize
// the conversion constants and formatting here so magnitudes are never
// hand-rolled at call sites.
#pragma once

#include <cstdint>
#include <string>

namespace stune::simcore {

/// Time in seconds (simulated time, not wall clock).
using Seconds = double;

/// Data volume in bytes.
using Bytes = std::uint64_t;

/// Data rate in bytes per second.
using BytesPerSecond = double;

/// Monetary cost in US dollars.
using Dollars = double;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;
inline constexpr Bytes kTiB = 1024ULL * kGiB;

constexpr Bytes kib(double n) { return static_cast<Bytes>(n * static_cast<double>(kKiB)); }
constexpr Bytes mib(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr Bytes gib(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }

constexpr Seconds minutes(double n) { return n * 60.0; }
constexpr Seconds hours(double n) { return n * 3600.0; }

/// Render a byte count as a short human-readable string ("1.5 GiB").
std::string format_bytes(Bytes b);

/// Render a duration as a short human-readable string ("2m 13.4s").
std::string format_seconds(Seconds s);

}  // namespace stune::simcore
