// Clang thread-safety-analysis attribute macros.
//
// Annotating which mutex guards which member turns lock discipline into a
// compile-time property: a read of a STUNE_GUARDED_BY(mu_) field outside a
// critical section is a build error under Clang with -Wthread-safety (the
// STUNE_THREAD_SAFETY CMake option promotes it to -Werror=thread-safety).
// On compilers without the analysis (GCC) every macro expands to nothing,
// so annotations cost nothing and cannot bit-rot the portable build; the
// clang CI job keeps them honest.
//
// Conventions (see DESIGN.md "Static analysis"):
//   - every member whose writes happen under a mutex is STUNE_GUARDED_BY it;
//   - private helpers called with the lock held are STUNE_REQUIRES(mu_);
//   - public entry points that take the lock themselves are
//     STUNE_EXCLUDES(mu_) so accidental re-entry cannot deadlock;
//   - members touched only before any thread is spawned (or after join) are
//     left unannotated with a comment saying which happens-before edge
//     protects them — the analysis has no vocabulary for thread lifetimes.
#pragma once

#if defined(__clang__)
#define STUNE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STUNE_THREAD_ANNOTATION(x)  // no-op: analysis is Clang-only
#endif

/// Declares a type to be a lockable capability ("mutex").
#define STUNE_CAPABILITY(x) STUNE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define STUNE_SCOPED_CAPABILITY STUNE_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding the given mutex.
#define STUNE_GUARDED_BY(x) STUNE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is guarded.
#define STUNE_PT_GUARDED_BY(x) STUNE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the given mutex(es) to be held by the caller.
#define STUNE_REQUIRES(...) STUNE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the given mutex(es) held.
#define STUNE_EXCLUDES(...) STUNE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the mutex (and does not release it before returning).
#define STUNE_ACQUIRE(...) STUNE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a mutex the caller holds.
#define STUNE_RELEASE(...) STUNE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define STUNE_TRY_ACQUIRE(...) STUNE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Accessor returns a reference to the named mutex.
#define STUNE_RETURN_CAPABILITY(x) STUNE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress the analysis for one function. Every use must
/// carry a comment explaining which invariant makes it sound.
#define STUNE_NO_THREAD_SAFETY_ANALYSIS STUNE_THREAD_ANNOTATION(no_thread_safety_analysis)
