// A fixed-size worker pool for running independent tasks concurrently.
//
// Built for the tuning layer's TrialExecutor: a batch of workload
// simulations is submitted, each worker runs tasks to completion, and the
// caller joins on the returned futures. The pool is deliberately minimal —
// no priorities, no work stealing — because trial batches are coarse
// (milliseconds to seconds each) and throughput is bounded by the engine,
// not the queue.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"

namespace stune::simcore {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. The future resolves when the task finishes; an
  /// exception thrown by the task is captured and rethrown on future.get().
  std::future<void> submit(std::function<void()> fn) STUNE_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop() STUNE_EXCLUDES(mu_);

  // Written only in the constructor, before any worker can observe it, and
  // read after join in the destructor: protected by thread creation/join
  // happens-before edges, not by mu_.
  std::vector<std::thread> workers_;

  Mutex mu_{lock_rank::kThreadPool};
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ STUNE_GUARDED_BY(mu_);
  bool stop_ STUNE_GUARDED_BY(mu_) = false;
};

}  // namespace stune::simcore
