#include "simcore/fault.hpp"

#include <algorithm>
#include <cstdint>

namespace stune::simcore {

namespace {

// Domain-separation tags for the plan's substreams. Arbitrary but fixed:
// changing them changes every injected schedule.
constexpr std::uint64_t kTrialTag = 0x747269616cULL;     // "trial"
constexpr std::uint64_t kStageTag = 0x7374616765ULL;     // "stage"
constexpr std::uint64_t kAttemptTag = 0x617474656dULL;   // "attem"

}  // namespace

bool FaultProfile::active() const {
  return executor_loss_rate > 0.0 || spot_revocation_rate > 0.0 || straggler_rate > 0.0 ||
         transient_error_rate > 0.0 || timeout_rate > 0.0;
}

std::uint64_t FaultProfile::fingerprint() const {
  std::uint64_t h = hash_double(executor_loss_rate);
  for (const double v : {spot_revocation_rate, straggler_rate, straggler_slowdown,
                         straggler_victim_fraction, transient_error_rate, timeout_rate,
                         timeout_hang_factor}) {
    h = hash_combine(h, hash_double(v));
  }
  return h;
}

FaultProfile FaultProfile::chaos(double level) {
  const double l = std::clamp(level, 0.0, 1.0);
  FaultProfile p;
  // Trial-fatal events sum to ~level: that is the per-trial infra-fault
  // probability benches sweep.
  p.transient_error_rate = 0.75 * l;
  p.timeout_rate = 0.25 * l;
  // Survivable events scale along; rates are per-executor/per-VM/per-stage
  // so they stay far below 1 even at level = 1.
  p.executor_loss_rate = 0.05 * l;
  p.spot_revocation_rate = 0.04 * l;
  p.straggler_rate = std::min(0.9, 1.5 * l);
  return p;
}

FaultPlan::FaultPlan(const FaultProfile& profile, std::uint64_t stream)
    : profile_(profile), stream_(stream), active_(profile.active()) {
  if (!active_) return;
  Rng trial(hash_combine(stream_, kTrialTag));
  transient_error_ = trial.bernoulli(profile_.transient_error_rate);
  error_position_ = trial.uniform();
  timeout_ = trial.bernoulli(profile_.timeout_rate);
}

std::uint64_t FaultPlan::fingerprint() const {
  if (!active_) return 0;  // every inactive plan is the same plan
  return hash_combine(profile_.fingerprint(), stream_);
}

StageFaults FaultPlan::stage_faults(int stage_id, int executors_alive, int vms_alive,
                                    double vm_hazard_weight) const {
  StageFaults f;
  if (!active_) return f;
  Rng rng = stage_stream(stage_id, kStageTag);
  for (int i = 0; i < executors_alive; ++i) {
    if (rng.bernoulli(profile_.executor_loss_rate)) ++f.lost_executors;
  }
  const double revoke = std::clamp(profile_.spot_revocation_rate * vm_hazard_weight, 0.0, 1.0);
  for (int i = 0; i < vms_alive; ++i) {
    if (rng.bernoulli(revoke)) ++f.lost_vms;
  }
  if (rng.bernoulli(profile_.straggler_rate)) {
    // Bursts vary in severity between half and full configured slowdown.
    f.straggler_factor =
        1.0 + (profile_.straggler_slowdown - 1.0) * (0.5 + 0.5 * rng.uniform());
  }
  return f;
}

Rng FaultPlan::stage_stream(int stage_id, std::uint64_t tag) const {
  return Rng(hash_combine(hash_combine(stream_, static_cast<std::uint64_t>(stage_id) + 1), tag));
}

FaultInjector::FaultInjector(const FaultProfile& profile, std::uint64_t seed)
    : profile_(profile), seed_(seed) {}

FaultPlan FaultInjector::plan(std::uint64_t trial_fingerprint, int attempt) const {
  const std::uint64_t stream = hash_combine(
      hash_combine(seed_, trial_fingerprint),
      hash_combine(kAttemptTag, static_cast<std::uint64_t>(attempt)));
  return FaultPlan(profile_, stream);
}

}  // namespace stune::simcore
