// Lock ranks: the runtime half of the project's deadlock-freedom story.
//
// Every long-lived mutex in the system is assigned an integer *rank* that
// encodes its position in the global acquisition order (the table below,
// mirrored in DESIGN.md §11). The invariant: a thread may only acquire a
// mutex whose rank is strictly greater than every rank it already holds.
// Rank kUnranked (0) opts a mutex out — short-lived or test-local mutexes
// that never nest with the ranked ones.
//
// The validator keeps a thread-local stack of held (mutex, rank) pairs.
// Under the STUNE_DEBUG_LOCK_RANK build option simcore::Mutex wires its
// lock()/unlock() into on_acquire()/on_release(), so any out-of-order
// acquisition — i.e. any schedule that could deadlock against another
// thread taking the same mutexes in the declared order — fails a
// STUNE_CHECK the moment one thread attempts it, on any schedule, not just
// the schedule that happens to deadlock. The static complement is
// stune_analyze's lock-order pass (tools/analyze), which derives the same
// graph from MutexLock scopes at rest; the two cross-check each other.
//
// The validator functions are compiled unconditionally (so unit tests can
// drive the checking logic in every build); only the Mutex wiring is behind
// the build option.
//
// Rank table (acquired top to bottom; see DESIGN.md §11 for the full map):
//
//   10  TuningService::Shard::mu      one tenant shard's entries/breakers
//   12  TuningService::Shard::ctl_mu  shard control plane: admission state,
//                                     shed/served counters, health snapshots
//                                     (short-held; nests inside the shard)
//   15  SharedKnowledgeBase::mu_      the cross-shard execution history
//   20  TrialExecutor::mu_        session serialization on a shared executor
//   30  SequentialAdapter::mu_    ask/tell rendezvous with the serial body
//   40  ThreadPool::mu_           task queue of the worker pool
//   45  TrialContextPool::mu_     checkout of per-worker engine scratch
//   50  EvalCache::Shard::mu      one shard of the execution memo (leaf)
//
// The serving tier's admission path takes ctl_mu *before* the shard mutex,
// but never while holding it — admission decides, releases, and only then
// the request queues on the shard — so the 10 < 12 order (which permits
// counter updates while a run holds the shard mutex) is never contradicted.
#pragma once

#include <cstddef>

namespace stune::simcore::lock_rank {

inline constexpr int kUnranked = 0;
inline constexpr int kServiceShard = 10;
/// Backwards-compatible alias from when the service had a single mutex; the
/// sharded service gives every tenant shard its own rank-10 mutex.
inline constexpr int kTuningService = kServiceShard;
inline constexpr int kServiceShardControl = 12;
inline constexpr int kKnowledgeBase = 15;
inline constexpr int kTrialExecutor = 20;
inline constexpr int kSequentialAdapter = 30;
inline constexpr int kThreadPool = 40;
inline constexpr int kTrialContextPool = 45;
inline constexpr int kEvalCacheShard = 50;

/// Validate then record an acquisition by the calling thread. Throws
/// simcore::CheckError (via STUNE_CHECK) before recording anything if
/// `rank` is ranked and the thread already holds a mutex of rank >= rank,
/// or if it already holds `mu` itself (self-deadlock). Called by
/// Mutex::lock() *before* the native lock, so a violation never leaves the
/// underlying mutex held.
void on_acquire(const void* mu, int rank);

/// Record a successful try_lock. No ordering check: a try that cannot
/// block cannot deadlock, but the held entry must exist so later blocking
/// acquisitions see it.
void on_try_acquire(const void* mu, int rank) noexcept;

/// Remove `mu` from the calling thread's held stack (no-op if absent —
/// e.g. a mutex locked before the validator was wired in).
void on_release(const void* mu) noexcept;

/// Number of mutexes the calling thread currently holds (tests).
std::size_t held_count() noexcept;

/// Highest rank the calling thread currently holds; kUnranked when none.
int max_held_rank() noexcept;

}  // namespace stune::simcore::lock_rank
