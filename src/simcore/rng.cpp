#include "simcore/rng.hpp"

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "simcore/check.hpp"

namespace stune::simcore {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_string(std::string_view s) {
  // FNV-1a 64-bit, then one SplitMix64 finalization for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

std::uint64_t hash_double(double v) {
  std::uint64_t s = std::bit_cast<std::uint64_t>(v);
  return splitmix64(s);
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t tag) const {
  const std::uint64_t mixed =
      hash_combine(hash_combine(state_[0], state_[3]), hash_combine(tag, state_[1]));
  return Rng(mixed);
}

double Rng::uniform() {
  // 53-bit mantissa construction -> uniform on [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  STUNE_CHECK_LE(lo, hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Lemire's method would be faster; modulo bias is negligible for our ranges
  // but we reject to keep streams unbiased and reproducible across platforms.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  // Box-Muller, discarding the spare so the stream has no hidden state.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  STUNE_CHECK_GT(lambda, 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    STUNE_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: all weights are zero");
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

}  // namespace stune::simcore
