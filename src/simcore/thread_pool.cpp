#include "simcore/thread_pool.hpp"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <utility>

#include "simcore/check.hpp"

namespace stune::simcore {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  STUNE_CHECK(fn != nullptr) << "ThreadPool::submit: empty task";
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    const MutexLock lock(mu_);
    STUNE_CHECK(!stop_) << "ThreadPool::submit after shutdown";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the packaged_task's future
  }
}

}  // namespace stune::simcore
