#include "disc/metrics.hpp"

#include <sstream>
#include <string>

namespace stune::disc {

void ExecutionReport::finalize_aggregates() {
  total_cpu = total_gc = total_disk = total_net = total_spill = total_overhead = 0.0;
  total_input = total_shuffle_read = total_shuffle_write = total_spilled = 0;
  total_lost_executors = total_lost_vms = total_speculative_tasks = 0;
  total_recovery = 0.0;
  for (const auto& s : stages) {
    total_cpu += s.cpu_seconds;
    total_gc += s.gc_seconds;
    total_disk += s.disk_seconds;
    total_net += s.net_seconds;
    total_spill += s.spill_seconds;
    total_overhead += s.overhead_seconds;
    total_input += s.input_bytes;
    total_shuffle_read += s.shuffle_read_bytes;
    total_shuffle_write += s.shuffle_write_bytes;
    total_spilled += s.spilled_bytes;
    total_lost_executors += s.lost_executors;
    total_lost_vms += s.lost_vms;
    total_speculative_tasks += s.speculative_tasks;
    total_recovery += s.recovery_seconds;
  }
}

std::string ExecutionReport::summary() const {
  std::ostringstream out;
  if (!success) {
    out << "FAILED (" << failure_reason << ") after " << simcore::format_seconds(runtime);
    return out.str();
  }
  out << simcore::format_seconds(runtime) << " on " << executors << " executors ("
      << total_slots << " slots), $" << cost << "; shuffle "
      << simcore::format_bytes(total_shuffle_read) << ", spilled "
      << simcore::format_bytes(total_spilled) << ", cache hit "
      << static_cast<int>(cache_hit_fraction * 100.0) << "%";
  return out.str();
}

}  // namespace stune::disc
