#include "disc/deployment.hpp"

#include <algorithm>
#include <cmath>

namespace stune::disc {

namespace {
constexpr double kGiBf = 1024.0 * 1024.0 * 1024.0;
/// Spark's fixed reserve before the unified region is carved out.
constexpr Bytes kReservedPerExecutor = 300ULL * 1024 * 1024;
}  // namespace

Deployment resolve_deployment(const config::SparkConf& conf, const cluster::Cluster& cluster) {
  Deployment d;
  d.heap_per_executor = static_cast<Bytes>(conf.executor_memory_gib * kGiBf);
  d.driver_heap = static_cast<Bytes>(conf.driver_memory_gib * kGiBf);

  const auto container =
      static_cast<Bytes>(static_cast<double>(d.heap_per_executor) * (1.0 + conf.memory_overhead_factor));
  const Bytes vm_mem = cluster.usable_memory_per_vm();
  const int vcpus = cluster.type().vcpus;

  if (conf.executor_cores > vcpus) {
    d.failure = "executor.cores exceeds the VM's vCPUs";
    return d;
  }
  if (container > vm_mem) {
    d.failure = "executor container does not fit in VM memory";
    return d;
  }
  if (conf.task_cpus > conf.executor_cores) {
    d.failure = "task.cpus exceeds executor.cores: no task can be scheduled";
    return d;
  }

  const int by_cores = vcpus / conf.executor_cores;
  const int by_mem = static_cast<int>(vm_mem / container);
  d.executors_per_vm = std::min(by_cores, by_mem);
  if (d.executors_per_vm <= 0) {
    d.failure = "no executor fits on a VM";
    return d;
  }

  const int capacity = d.executors_per_vm * cluster.vm_count();
  d.executors = conf.dynamic_allocation ? capacity : std::min(conf.executor_instances, capacity);
  // Re-derive per-VM occupancy from the actual fleet (a 3-executor fleet on
  // 4 VMs loads at most 1 executor per VM).
  d.executors_per_vm =
      static_cast<int>(std::ceil(static_cast<double>(d.executors) / cluster.vm_count()));

  d.slots_per_executor = conf.executor_cores / conf.task_cpus;
  d.total_slots = d.executors * d.slots_per_executor;
  d.slots_per_vm = d.executors_per_vm * d.slots_per_executor;

  if (d.heap_per_executor <= kReservedPerExecutor + (64ULL << 20)) {
    d.failure = "executor heap below Spark's minimum reserve";
    return d;
  }
  d.unified_per_executor = static_cast<Bytes>(
      static_cast<double>(d.heap_per_executor - kReservedPerExecutor) * conf.memory_fraction);
  d.storage_target_per_executor =
      static_cast<Bytes>(static_cast<double>(d.unified_per_executor) * conf.memory_storage_fraction);
  d.viable = true;
  return d;
}

}  // namespace stune::disc
