// Calibration constants of the task-level cost model.
//
// Grouped in one struct (rather than scattered literals) so ablation
// benchmarks can switch individual mechanisms off and tests can pin
// behaviour. Values are rough fits to public Spark measurements: per-byte
// CPU costs are reference-core seconds per byte; a "reference core" is an
// m5 vCPU (InstanceType::core_speed == 1.0).
#pragma once

#include <cstdint>

#include "simcore/units.hpp"

namespace stune::disc {

struct CostModel {
  // -- input & storage ---------------------------------------------------------
  /// HDFS-style block size: source stages get one task per split.
  simcore::Bytes input_split = 128ULL << 20;
  /// Per-slot bandwidth when reading deserialized cached partitions.
  double cached_read_bw = 4.0 * 1024 * 1024 * 1024;
  /// JVM object size / serialized size for deserialized data in memory.
  double deser_expansion = 2.2;

  // -- serialization (seconds per raw byte on a reference core) -----------------
  double java_ser = 3.2 / (1024.0 * 1024 * 1024);
  double java_deser = 2.4 / (1024.0 * 1024 * 1024);
  double kryo_ser = 1.3 / (1024.0 * 1024 * 1024);
  double kryo_deser = 0.9 / (1024.0 * 1024 * 1024);
  /// Extra GC pressure multiplier under the allocation-heavy Java serializer.
  double java_gc_penalty = 1.25;

  // -- per-record and fixed overheads --------------------------------------------
  double per_record_cpu = 20e-9;
  /// Scheduler delay + task launch + closure deserialization.
  double task_overhead = 0.12;
  double stage_overhead = 0.08;
  /// Driver-side cost per task (status tracking, result accumulation).
  double per_task_driver = 4e-4;
  /// One-off job submission + DAG planning.
  double job_overhead = 0.4;

  // -- shuffle -------------------------------------------------------------------
  /// Cost of one shuffle-file buffer flush, by storage kind.
  double flush_seek_hdd = 4.0e-4;
  double flush_seek_ebs = 1.2e-4;
  double flush_seek_nvme = 2.0e-5;
  /// Map-side sort cost (s per raw byte) when reducers exceed the
  /// bypass-merge threshold.
  double shuffle_sort_cpu = 0.8 / (1024.0 * 1024 * 1024);
  /// Fetch pipelining half-saturation point: with maxSizeInFlight = this,
  /// the network runs at 50% efficiency.
  double fetch_overhead_mib = 12.0;
  /// Peer connection inefficiency: efficiency *= 1 - conn_penalty/conns.
  double conn_penalty = 0.3;

  // -- spill & OOM -----------------------------------------------------------------
  /// Extra merge-pass cost factor per doubling of (working set / memory).
  double spill_pass_cost = 0.25;
  /// A task OOMs when its working set exceeds headroom * execution memory.
  double spill_oom_headroom = 24.0;
  /// Fraction of the nominal task time burned by a failing attempt.
  double oom_attempt_fraction = 0.6;

  // -- GC ----------------------------------------------------------------------------
  double gc_base = 0.015;
  double gc_coef = 0.30;

  // -- stragglers & speculation -------------------------------------------------------
  double straggler_prob = 0.015;
  double straggler_slowdown = 3.0;
  /// Overhead of running duplicate speculative attempts.
  double speculation_tax = 0.015;

  // -- executor failures (fault tolerance via lineage) -----------------------------------
  /// Probability that any given executor dies during a stage (spot
  /// reclamation, hardware). Lost in-flight tasks re-run; cached partitions
  /// on the dead executor are recomputed on demand (Zaharia et al.'s RDD
  /// fault-tolerance story, which the paper's §III-A recounts).
  double executor_failure_rate = 0.0;
  /// Fraction of a failed executor's stage work that must be redone.
  double failure_rerun_fraction = 0.6;

  // -- locality --------------------------------------------------------------------------
  /// Fraction of source/cache reads that are remote with zero locality wait.
  double remote_read_base = 0.35;
  /// Exponential decay constant of remote fraction vs. locality wait (s).
  double locality_decay = 1.5;
  /// Expected scheduling delay per task per second of configured wait.
  double locality_wait_cost = 0.04;

  // -- broadcast ----------------------------------------------------------------------------
  /// Control-plane cost per broadcast block.
  double broadcast_block_overhead = 3.0e-4;
  /// Pipelining stall per block: block_size / net share * this.
  double broadcast_pipeline_stall = 0.5;

  // -- recompute (cache miss) -------------------------------------------------------------------
  /// Disk re-read charged on top of the plan's recompute CPU (per byte).
  bool enable_recompute_penalty = true;
  /// Gates for ablation benches.
  bool enable_spill = true;
  bool enable_gc = true;
  bool enable_oom = true;

  /// Stable hash over every field; part of the engine context fingerprint
  /// that keys cached execution reports. Must be updated whenever a field
  /// is added, or stale cache hits follow.
  std::uint64_t fingerprint() const;
};

}  // namespace stune::disc
