#include "disc/audit.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/audit.hpp"

namespace stune::disc {

namespace {

constexpr Bytes kReservedPerExecutor = 300ULL * 1024 * 1024;

template <typename... Args>
void report(std::vector<std::string>& out, Args&&... args) {
  std::ostringstream msg;
  (msg << ... << args);
  out.push_back(msg.str());
}

bool finite_nonneg(double x) { return std::isfinite(x) && x >= 0.0; }

/// Relative comparison for rolled-up double sums.
bool close(double a, double b) {
  return std::abs(a - b) <= 1e-6 + 1e-9 * std::max(std::abs(a), std::abs(b));
}

void check_seconds(std::vector<std::string>& v, int stage_id, const char* what, double value) {
  if (!finite_nonneg(value)) {
    report(v, "stage ", stage_id, " has invalid ", what, " ", value);
  }
}

}  // namespace

std::vector<std::string> audit(const Deployment& d, const config::SparkConf& conf,
                               const cluster::Cluster& cluster) {
  std::vector<std::string> v;
  if (!d.viable) {
    if (d.failure.empty()) report(v, "non-viable deployment carries no failure reason");
    return v;
  }
  if (!d.failure.empty()) report(v, "viable deployment carries failure reason '", d.failure, "'");

  if (d.executors <= 0) report(v, "viable deployment has ", d.executors, " executors");
  if (d.executors_per_vm <= 0) report(v, "viable deployment packs ", d.executors_per_vm, "/VM");
  if (d.slots_per_executor <= 0) {
    report(v, "viable deployment has ", d.slots_per_executor, " slots per executor");
  }
  if (d.total_slots != d.executors * d.slots_per_executor) {
    report(v, "slot arithmetic broken: total_slots ", d.total_slots, " != executors ",
           d.executors, " x slots_per_executor ", d.slots_per_executor);
  }
  if (d.slots_per_vm != d.executors_per_vm * d.slots_per_executor) {
    report(v, "slot arithmetic broken: slots_per_vm ", d.slots_per_vm, " != executors_per_vm ",
           d.executors_per_vm, " x slots_per_executor ", d.slots_per_executor);
  }
  if (d.executors > d.executors_per_vm * cluster.vm_count()) {
    report(v, "fleet of ", d.executors, " exceeds per-VM packing x vm_count = ",
           d.executors_per_vm * cluster.vm_count());
  }

  // Memory conservation within one executor: reserve + unified <= heap,
  // storage target inside the unified region.
  if (d.heap_per_executor <= kReservedPerExecutor) {
    report(v, "executor heap ", d.heap_per_executor, " does not cover Spark's reserve ",
           kReservedPerExecutor);
  } else if (d.unified_per_executor > d.heap_per_executor - kReservedPerExecutor) {
    report(v, "memory conservation violation: unified region ", d.unified_per_executor,
           " + reserve ", kReservedPerExecutor, " exceeds heap ", d.heap_per_executor);
  }
  if (d.storage_target_per_executor > d.unified_per_executor) {
    report(v, "storage target ", d.storage_target_per_executor, " exceeds unified region ",
           d.unified_per_executor);
  }

  // Packing against the physical VM (core and container-memory bounds).
  const auto container = static_cast<Bytes>(
      static_cast<double>(d.heap_per_executor) * (1.0 + conf.memory_overhead_factor));
  for (auto& violation :
       cluster::audit_packing(cluster, d.executors_per_vm, conf.executor_cores, container)) {
    v.push_back(std::move(violation));
  }
  return v;
}

std::vector<std::string> audit_stage(const StageMetrics& m, int total_slots,
                                     bool allow_unlaunched) {
  std::vector<std::string> v;
  if (m.tasks < 0 || (m.tasks == 0 && !allow_unlaunched)) {
    report(v, "stage ", m.stage_id, " launched ", m.tasks, " tasks");
  }
  if (m.failed_tasks < 0 || m.failed_tasks > m.tasks) {
    report(v, "task conservation violation: stage ", m.stage_id, " reports ", m.failed_tasks,
           " failed of ", m.tasks, " launched");
  }
  if (total_slots > 0 && m.tasks > 0 && m.waves > 0) {
    const int expected = (m.tasks + total_slots - 1) / total_slots;
    if (m.waves != expected) {
      report(v, "stage ", m.stage_id, " reports ", m.waves, " waves for ", m.tasks,
             " tasks on ", total_slots, " slots (expected ", expected, ")");
    }
  }
  check_seconds(v, m.stage_id, "start", m.start);
  check_seconds(v, m.stage_id, "duration", m.duration);
  check_seconds(v, m.stage_id, "cpu_seconds", m.cpu_seconds);
  check_seconds(v, m.stage_id, "gc_seconds", m.gc_seconds);
  check_seconds(v, m.stage_id, "disk_seconds", m.disk_seconds);
  check_seconds(v, m.stage_id, "net_seconds", m.net_seconds);
  check_seconds(v, m.stage_id, "spill_seconds", m.spill_seconds);
  check_seconds(v, m.stage_id, "overhead_seconds", m.overhead_seconds);
  check_seconds(v, m.stage_id, "recovery_seconds", m.recovery_seconds);
  if (m.lost_executors < 0) {
    report(v, "stage ", m.stage_id, " lost ", m.lost_executors, " executors");
  }
  if (m.lost_vms < 0) report(v, "stage ", m.stage_id, " lost ", m.lost_vms, " VMs");
  if (m.speculative_tasks < 0 || m.speculative_tasks > m.tasks) {
    report(v, "speculation conservation violation: stage ", m.stage_id, " speculated ",
           m.speculative_tasks, " of ", m.tasks, " tasks");
  }
  // Recovery work only exists when something was lost.
  if (m.recovery_seconds > 1e-9 && m.lost_executors == 0 && m.lost_vms == 0) {
    report(v, "stage ", m.stage_id, " charged ", m.recovery_seconds,
           " recovery seconds without losing an executor or VM");
  }
  if (!(m.cache_hit_fraction >= 0.0 && m.cache_hit_fraction <= 1.0)) {
    report(v, "stage ", m.stage_id, " cache_hit_fraction ", m.cache_hit_fraction,
           " outside [0, 1]");
  }
  // Spill conservation: the engine only spills aggregation state built from
  // shuffle reads, so spilled bytes imply shuffle input.
  if (m.spilled_bytes > 0 && m.shuffle_read_bytes == 0) {
    report(v, "stage ", m.stage_id, " spilled ", m.spilled_bytes,
           " bytes without reading any shuffle data");
  }
  // (sub-millisecond spill time can round to zero whole bytes; ignore it)
  if (m.spill_seconds > 1e-3 && m.spilled_bytes == 0) {
    report(v, "stage ", m.stage_id, " charged ", m.spill_seconds,
           " spill seconds without spilling bytes");
  }
  return v;
}

std::vector<std::string> audit(const ExecutionReport& report_in) {
  std::vector<std::string> v;
  if (report_in.success && !report_in.failure_reason.empty()) {
    report(v, "successful report carries failure reason '", report_in.failure_reason, "'");
  }
  if (!report_in.success && report_in.failure_reason.empty()) {
    report(v, "failed report carries no failure reason");
  }
  if (!finite_nonneg(report_in.runtime)) report(v, "invalid runtime ", report_in.runtime);
  if (!finite_nonneg(report_in.cost)) report(v, "invalid cost ", report_in.cost);
  if (report_in.success && report_in.infra_fault) {
    report(v, "successful report blames an infrastructure fault");
  }
  if (!(report_in.cache_hit_fraction >= 0.0 && report_in.cache_hit_fraction <= 1.0)) {
    report(v, "cache_hit_fraction ", report_in.cache_hit_fraction, " outside [0, 1]");
  }
  if (report_in.success && report_in.total_slots <= 0) {
    report(v, "successful report with ", report_in.total_slots, " slots");
  }

  // Stage-level sanity (waves are not re-checked here: failure reports may
  // legitimately contain a partially-scheduled final stage).
  Seconds cpu = 0.0, gc = 0.0, disk = 0.0, net = 0.0, spill = 0.0, overhead = 0.0;
  Seconds recovery = 0.0;
  Bytes input = 0, sread = 0, swrite = 0, spilled = 0;
  int lost_executors = 0, lost_vms = 0, speculative = 0;
  for (const StageMetrics& m : report_in.stages) {
    // A failed report may end with the stage the run died in before any
    // task launched (whole-fleet revocation), like the partially-scheduled
    // waves above.
    for (auto& violation : audit_stage(m, 0, !report_in.success)) {
      v.push_back(std::move(violation));
    }
    if (report_in.success &&
        m.start + m.duration > report_in.runtime * (1.0 + 1e-9) + 1e-6) {
      report(v, "stage ", m.stage_id, " finishes at ", m.start + m.duration,
             " after the reported runtime ", report_in.runtime);
    }
    cpu += m.cpu_seconds;
    gc += m.gc_seconds;
    disk += m.disk_seconds;
    net += m.net_seconds;
    spill += m.spill_seconds;
    overhead += m.overhead_seconds;
    input += m.input_bytes;
    sread += m.shuffle_read_bytes;
    swrite += m.shuffle_write_bytes;
    spilled += m.spilled_bytes;
    recovery += m.recovery_seconds;
    lost_executors += m.lost_executors;
    lost_vms += m.lost_vms;
    speculative += m.speculative_tasks;
  }

  // Aggregate conservation: report totals must equal the stage roll-up.
  if (!close(report_in.total_cpu, cpu)) {
    report(v, "aggregate cpu ", report_in.total_cpu, " != stage roll-up ", cpu);
  }
  if (!close(report_in.total_gc, gc)) {
    report(v, "aggregate gc ", report_in.total_gc, " != stage roll-up ", gc);
  }
  if (!close(report_in.total_disk, disk)) {
    report(v, "aggregate disk ", report_in.total_disk, " != stage roll-up ", disk);
  }
  if (!close(report_in.total_net, net)) {
    report(v, "aggregate net ", report_in.total_net, " != stage roll-up ", net);
  }
  if (!close(report_in.total_spill, spill)) {
    report(v, "aggregate spill ", report_in.total_spill, " != stage roll-up ", spill);
  }
  if (!close(report_in.total_overhead, overhead)) {
    report(v, "aggregate overhead ", report_in.total_overhead, " != stage roll-up ", overhead);
  }
  if (report_in.total_input != input) {
    report(v, "aggregate input bytes ", report_in.total_input, " != stage roll-up ", input);
  }
  if (report_in.total_shuffle_read != sread) {
    report(v, "aggregate shuffle-read bytes ", report_in.total_shuffle_read,
           " != stage roll-up ", sread);
  }
  if (report_in.total_shuffle_write != swrite) {
    report(v, "aggregate shuffle-write bytes ", report_in.total_shuffle_write,
           " != stage roll-up ", swrite);
  }
  if (report_in.total_spilled != spilled) {
    report(v, "aggregate spilled bytes ", report_in.total_spilled, " != stage roll-up ", spilled);
  }
  if (!close(report_in.total_recovery, recovery)) {
    report(v, "aggregate recovery ", report_in.total_recovery, " != stage roll-up ", recovery);
  }
  if (report_in.total_lost_executors != lost_executors) {
    report(v, "aggregate lost executors ", report_in.total_lost_executors, " != stage roll-up ",
           lost_executors);
  }
  if (report_in.total_lost_vms != lost_vms) {
    report(v, "aggregate lost VMs ", report_in.total_lost_vms, " != stage roll-up ", lost_vms);
  }
  if (report_in.total_speculative_tasks != speculative) {
    report(v, "aggregate speculative tasks ", report_in.total_speculative_tasks,
           " != stage roll-up ", speculative);
  }
  return v;
}

}  // namespace stune::disc
