// Reusable per-trial engine state: the allocation- and draw-amortization
// layer under SparkSimulator's event-driven run path.
//
// A tuning batch executes the same plan thousands of times under different
// configurations. Three expensive per-trial artifacts are invariant across
// those trials and are cached here:
//
//   - the plan topology (indegrees + children CSR), keyed by
//     dag::topology_fingerprint — rebuilt only when the plan shape changes;
//   - the contention sample sequence, keyed by (master stream hash,
//     ContentionParams fingerprint) — the AR(1) process is deliberately
//     configuration-independent, so its per-stage samples replay verbatim;
//   - the per-stage random draws (task-skew lognormals + straggler
//     bernoullis, in the engine's exact interleaved order), keyed by
//     (stage id, task count) under a basis hash covering the master stream,
//     the topology and the cost model's straggler probability. Task counts
//     depend on the configuration, so one stage may cache several draw
//     sets; the srng state after the task loop is stored too, because the
//     executor-failure draws that follow depend on the deployment and must
//     replay live;
//   - whole stage outcomes (StageOutcome): on fault-free runs the per-task
//     loop, the schedule and the executor-failure block are a pure function
//     of the draws plus ~30 scalars, so the engine keys their bit patterns
//     and replays the stored result — the O(tasks) heart of a trial
//     collapses to a hash lookup. Chaos runs and stages that end in task
//     OOM always compute live.
//
// All three caches are validated by basis hashes every run, so a context
// can be handed arbitrary (simulator, plan, config) triples in any order
// and the reports stay bitwise identical to a cold run. The TrialArena
// supplies the per-trial scratch (duration buffers, scheduler heaps,
// indegree working copies) and is reset at the top of every run.
//
// A TrialContext is not thread-safe; concurrent trial workers each check
// one out of a TrialContextPool (lock rank 45).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/contention.hpp"
#include "dag/plan.hpp"
#include "simcore/arena.hpp"
#include "simcore/mutex.hpp"
#include "simcore/rng.hpp"
#include "simcore/thread_annotations.hpp"

namespace stune::disc {

/// One stage's cached random draws for a given task count: the lognormal
/// skew factors and straggler flags in the exact order the engine consumes
/// them, plus the stage generator's state after the task loop.
struct StageDraws {
  std::vector<double> skew;
  std::vector<unsigned char> straggler;
  simcore::Rng rng_after{0};
};

/// The memoized result of one fault-free stage body: everything the
/// per-task loop, the scheduler and the executor-failure block produce.
/// Valid only under the exact key it was stored with — the key folds the
/// bit patterns of every scalar those computations read — so replaying it
/// is bitwise identical to recomputing. Fields that depend on the stage's
/// start time (start, duration-as-finish, the collect transfer) are NOT
/// here; the engine recomputes those live on replay.
struct StageOutcome {
  double makespan = 0.0;  // post-schedule, post-executor-failure
  int waves = 0;
  // Absolute per-resource totals as of the end of the executor-failure
  // block (net_seconds includes the broadcast transfer, which is key-stable).
  double cpu_seconds = 0.0;
  double gc_seconds = 0.0;
  double disk_seconds = 0.0;
  double net_seconds = 0.0;
  double spill_seconds = 0.0;
  double overhead_seconds = 0.0;
  std::uint64_t spilled_bytes = 0;
  int failed_tasks = 0;
  /// Executor-failure decay of the run's cache-hit fraction: 1.0 when no
  /// executor died, else the (1 - lost_fraction) multiplier to apply.
  bool exec_failures = false;
  double cache_hit_mult = 1.0;
};

class TrialContext {
 public:
  TrialContext() = default;
  TrialContext(const TrialContext&) = delete;
  TrialContext& operator=(const TrialContext&) = delete;

  /// Drop every cache and release no memory guarantees beyond correctness:
  /// the next run through this context repopulates everything, and reports
  /// are bitwise identical either way.
  void clear();

  // -- observability (tests and benches) ---------------------------------------
  std::size_t cached_draw_sets() const { return draws_.size(); }
  std::size_t cached_contention_samples() const { return cont_samples_.size(); }
  std::uint64_t draw_hits() const { return draw_hits_; }
  std::uint64_t draw_misses() const { return draw_misses_; }
  std::size_t cached_stage_outcomes() const { return outcomes_.size(); }
  std::uint64_t outcome_hits() const { return outcome_hits_; }
  std::uint64_t outcome_misses() const { return outcome_misses_; }
  const simcore::TrialArena& arena() const { return arena_; }

 private:
  friend class SparkSimulator;

  /// Topology for `plan`, rebuilt only when its shape fingerprint changes.
  const dag::PlanTopology& topology(const dag::PhysicalPlan& plan);

  /// The `ordinal`-th contention sample of the stream identified by
  /// `basis`; extends the cached sequence on demand. `make` constructs the
  /// process positioned at sample 0 when the basis changes.
  template <typename MakeFn>
  const cluster::ContentionSample& contention_sample(std::uint64_t basis, std::size_t ordinal,
                                                     MakeFn&& make) {
    if (contention_basis_ != basis) {
      cont_proc_ = make();
      cont_samples_.clear();
      contention_basis_ = basis;
    }
    while (cont_samples_.size() <= ordinal) cont_samples_.push_back(cont_proc_->next());
    return cont_samples_[ordinal];
  }

  /// Draw set for (stage id, tasks) under `basis`; `make` fills a StageDraws
  /// on miss. Evicts wholesale when the basis changes or the cache exceeds
  /// its size valve.
  template <typename MakeFn>
  const StageDraws& stage_draws(std::uint64_t basis, int stage_id, int tasks, MakeFn&& make) {
    if (draw_basis_ != basis) {
      draws_.clear();
      draw_basis_ = basis;
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(stage_id))
                               << 32) |
                              static_cast<std::uint32_t>(tasks);
    auto it = draws_.find(key);
    if (it == draws_.end()) {
      if (draws_.size() >= kMaxDrawSets) draws_.clear();  // safety valve
      StageDraws d;
      make(&d);
      it = draws_.emplace(key, std::move(d)).first;
      ++draw_misses_;
    } else {
      ++draw_hits_;
    }
    return it->second;
  }

  /// Stage outcome under `key`, or nullptr. The key is self-contained (it
  /// folds the master stream, the simulator context, the plan and every
  /// scalar the stage body reads), so there is no separate basis to check.
  const StageOutcome* find_outcome(std::uint64_t key) {
    auto it = outcomes_.find(key);
    if (it == outcomes_.end()) {
      ++outcome_misses_;
      return nullptr;
    }
    ++outcome_hits_;
    return &it->second;
  }

  void store_outcome(std::uint64_t key, const StageOutcome& o) {
    if (outcomes_.size() >= kMaxOutcomes) outcomes_.clear();  // safety valve
    outcomes_.emplace(key, o);
  }

  static constexpr std::size_t kMaxDrawSets = 4096;
  static constexpr std::size_t kMaxOutcomes = 8192;

  simcore::TrialArena arena_;

  std::uint64_t topo_fp_ = 0;
  dag::PlanTopology topo_;

  std::uint64_t contention_basis_ = 0;
  std::optional<cluster::ContentionProcess> cont_proc_;
  std::vector<cluster::ContentionSample> cont_samples_;

  std::uint64_t draw_basis_ = 0;
  std::unordered_map<std::uint64_t, StageDraws> draws_;
  std::uint64_t draw_hits_ = 0;
  std::uint64_t draw_misses_ = 0;

  std::unordered_map<std::uint64_t, StageOutcome> outcomes_;
  std::uint64_t outcome_hits_ = 0;
  std::uint64_t outcome_misses_ = 0;
};

/// A fixed set of TrialContexts checked out by concurrent trial workers.
/// acquire() blocks until a context is free; the returned Lease gives the
/// worker exclusive use and returns the context on destruction. The pool
/// mutex ranks between ThreadPool and EvalCache shards (rank table in
/// simcore/lock_rank.hpp) and is never held while a trial runs — checkout
/// and return are O(1) pointer moves.
class TrialContextPool {
 public:
  explicit TrialContextPool(std::size_t contexts);

  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    TrialContext& operator*() const { return *ctx_; }
    TrialContext* operator->() const { return ctx_.get(); }

   private:
    friend class TrialContextPool;
    Lease(TrialContextPool* pool, std::unique_ptr<TrialContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}

    TrialContextPool* pool_;
    std::unique_ptr<TrialContext> ctx_;
  };

  /// Check a context out, blocking until one is available.
  Lease acquire();

  std::size_t size() const { return size_; }
  /// Contexts currently checked out (tests).
  std::size_t leased() const;

 private:
  void release(std::unique_ptr<TrialContext> ctx);

  const std::size_t size_;
  mutable simcore::Mutex mu_{simcore::lock_rank::kTrialContextPool};
  simcore::CondVar cv_;
  std::vector<std::unique_ptr<TrialContext>> free_ STUNE_GUARDED_BY(mu_);
};

}  // namespace stune::disc
