// Executor placement: how a SparkConf maps onto a concrete cluster.
//
// Follows the YARN container model: each VM packs
// min(vcpus / executor.cores, usable_mem / (heap * (1 + overhead)))
// executors; the requested executor count is capped by that capacity (with
// dynamicAllocation the fleet is sized to capacity directly). Exposed
// separately from the engine so tests and tuner feasibility checks can use
// it without running a simulation.
#pragma once

#include <string>

#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "simcore/units.hpp"

namespace stune::disc {

using simcore::Bytes;

struct Deployment {
  bool viable = false;
  std::string failure;  // set when !viable

  int executors_per_vm = 0;
  int executors = 0;           // total across the cluster
  int slots_per_executor = 0;  // executor.cores / task.cpus
  int total_slots = 0;
  int slots_per_vm = 0;

  Bytes heap_per_executor = 0;
  /// Unified region: (heap - 300 MiB reserve) * memory.fraction.
  Bytes unified_per_executor = 0;
  /// Eviction-immune storage region: unified * memory.storageFraction.
  Bytes storage_target_per_executor = 0;
  Bytes driver_heap = 0;
};

/// Compute the deployment. Never throws; infeasible configurations come
/// back with viable == false and a human-readable reason (these are the
/// "crashes when choosing incorrectly" the paper warns about, and tuners
/// must cope with them).
Deployment resolve_deployment(const config::SparkConf& conf, const cluster::Cluster& cluster);

}  // namespace stune::disc
