#include "disc/whatif.hpp"

#include <algorithm>
#include <cmath>

#include "disc/deployment.hpp"

namespace stune::disc {

namespace {

constexpr double kGiBf = 1024.0 * 1024.0 * 1024.0;

/// Per-byte serializer cost (ser + deser) for reconstruction.
double ser_cost_per_byte(const CostModel& cm, config::Serializer s) {
  return s == config::Serializer::kKryo ? cm.kryo_ser + cm.kryo_deser
                                        : cm.java_ser + cm.java_deser;
}

/// Per-byte codec cost (compress + decompress).
double codec_cost_per_byte(const config::SparkConf& conf) {
  const auto p = config::codec_profile(conf.codec, conf.compression_level);
  return p.compress_cpb + p.decompress_cpb;
}

double codec_ratio(const config::SparkConf& conf) {
  return config::codec_profile(conf.codec, conf.compression_level).ratio;
}

/// Network fetch efficiency, mirroring the engine's model.
double net_efficiency(const CostModel& cm, const config::SparkConf& conf) {
  const double fetch = conf.reducer_max_inflight_mib /
                       (conf.reducer_max_inflight_mib + cm.fetch_overhead_mib);
  const double conn = 1.0 - cm.conn_penalty / conf.shuffle_connections_per_peer;
  return std::max(0.05, fetch * conn);
}

int concurrency_per_vm(const Deployment& dep, int tasks, int vms) {
  return std::max(1, std::min(dep.slots_per_vm, (tasks + vms - 1) / vms));
}

}  // namespace

WhatIfEngine::WhatIfEngine(cluster::Cluster cluster, CostModel cost)
    : cluster_(std::move(cluster)), cost_(cost) {}

WhatIfPrediction WhatIfEngine::predict(const ExecutionReport& profile,
                                       const config::SparkConf& profiled,
                                       const config::SparkConf& target, bool is_sql) const {
  WhatIfPrediction out;
  const Deployment dep_a = resolve_deployment(profiled, cluster_);
  const Deployment dep_b = resolve_deployment(target, cluster_);
  if (!dep_a.viable || !profile.success) {
    out.feasible = false;
    out.note = "profile was not a successful execution";
    out.runtime = 45.0;
    return out;
  }
  if (!dep_b.viable) {
    out.feasible = false;
    out.note = dep_b.failure;
    out.runtime = 45.0;
    return out;
  }

  const int vms = cluster_.vm_count();
  const int parallelism_b = is_sql ? target.sql_shuffle_partitions : target.default_parallelism;

  // Memory regions per task under both configurations (no cache knowledge
  // in the profile, so assume the storage target is claimed — conservative).
  const double exec_a =
      std::max(1.0, static_cast<double>(dep_a.unified_per_executor -
                                        dep_a.storage_target_per_executor) /
                        dep_a.slots_per_executor);
  const double exec_b =
      std::max(1.0, static_cast<double>(dep_b.unified_per_executor -
                                        dep_b.storage_target_per_executor) /
                        dep_b.slots_per_executor);

  double total = cost_.job_overhead;
  for (const auto& s : profile.stages) {
    const bool reads_shuffle = s.shuffle_read_bytes > 0;
    // Source stages keep their split-driven task count; everything else is
    // governed by the parallelism knob (the profile cannot distinguish a
    // materialized read from a shuffle read with zero bytes — one of the
    // approximations that costs Starfish accuracy).
    const auto split_tasks =
        static_cast<int>((s.input_bytes + cost_.input_split - 1) / cost_.input_split);
    const bool source_like = !reads_shuffle && std::abs(s.tasks - split_tasks) <= 1;
    const int tasks_b = std::max(1, source_like ? s.tasks : parallelism_b);

    const int conc_a = concurrency_per_vm(dep_a, s.tasks, vms);
    const int conc_b = concurrency_per_vm(dep_b, tasks_b, vms);
    const double conc_scale = static_cast<double>(conc_b) / conc_a;

    const double shuffle_bytes =
        static_cast<double>(s.shuffle_read_bytes + s.shuffle_write_bytes);

    // -- CPU: separate serializer/codec work from user work using volumes.
    const double ser_a = shuffle_bytes * ser_cost_per_byte(cost_, profiled.serializer);
    const double codec_a =
        profiled.shuffle_compress ? shuffle_bytes * codec_cost_per_byte(profiled) : 0.0;
    const double user_cpu = std::max(0.3 * s.cpu_seconds, s.cpu_seconds - ser_a - codec_a);
    double cpu_b = user_cpu + shuffle_bytes * ser_cost_per_byte(cost_, target.serializer);
    if (target.shuffle_compress) cpu_b += shuffle_bytes * codec_cost_per_byte(target);

    // -- GC: scales with heap pressure; less heap, more collector time.
    const double heap_scale = static_cast<double>(dep_a.heap_per_executor) /
                              std::max<double>(1.0, static_cast<double>(dep_b.heap_per_executor));
    double gc_b = s.gc_seconds * std::clamp(heap_scale, 0.3, 4.0);
    if (target.serializer != profiled.serializer) {
      gc_b *= target.serializer == config::Serializer::kJava ? cost_.java_gc_penalty
                                                             : 1.0 / cost_.java_gc_penalty;
    }

    // -- disk & network: task-seconds scale with per-VM concurrency and
    //    wire volume (compression toggle).
    double wire_scale = 1.0;
    if (shuffle_bytes > 0) {
      const double wire_a = profiled.shuffle_compress ? codec_ratio(profiled) : 1.0;
      const double wire_b = target.shuffle_compress ? codec_ratio(target) : 1.0;
      wire_scale = wire_b / wire_a;
    }
    const double disk_b = s.disk_seconds * conc_scale * wire_scale;
    const double net_b = s.net_seconds * conc_scale * wire_scale *
                         (net_efficiency(cost_, profiled) / net_efficiency(cost_, target));

    // -- spill: recompute pressure from per-task working set.
    double spill_b = 0.0;
    if (reads_shuffle) {
      const double read_pt_a = static_cast<double>(s.shuffle_read_bytes) / s.tasks;
      const double read_pt_b = static_cast<double>(s.shuffle_read_bytes) / tasks_b;
      double ws_pt_a;
      if (s.spilled_bytes > 0) {
        ws_pt_a = (static_cast<double>(s.spilled_bytes) / s.tasks) * cost_.deser_expansion +
                  exec_a;
      } else {
        // Unknown aggregation factor: assume a middling 0.6 (a profiled-
        // counter Starfish would have; we do not).
        ws_pt_a = read_pt_a * 0.6 * cost_.deser_expansion;
      }
      const double ws_pt_b = ws_pt_a * read_pt_b / std::max(1.0, read_pt_a);
      if (ws_pt_b > exec_b * cost_.spill_oom_headroom) {
        out.predicted_oom = true;
      }
      const double spill_raw_b = std::max(0.0, ws_pt_b - exec_b) / cost_.deser_expansion;
      const double spill_raw_a = std::max(0.0, ws_pt_a - exec_a) / cost_.deser_expansion;
      if (s.spill_seconds > 0 && spill_raw_a > 0) {
        spill_b = s.spill_seconds * (spill_raw_b * tasks_b) / (spill_raw_a * s.tasks);
      } else if (spill_raw_b > 0) {
        // Estimate from scratch: two disk passes plus ser/deser.
        const double disk_share = cluster_.disk_bw_per_vm() / conc_b;
        spill_b = spill_raw_b * tasks_b *
                  (2.0 / disk_share + ser_cost_per_byte(cost_, target.serializer));
      }
    }

    // -- fixed overheads follow the task count.
    const double overhead_b =
        (s.overhead_seconds / s.tasks) * tasks_b;

    // -- assemble: task-seconds over usable slots, with the profiled stage's
    //    own tail/imbalance factor carried over.
    const double task_seconds_a = s.cpu_seconds + s.gc_seconds + s.disk_seconds +
                                  s.net_seconds + s.spill_seconds + s.overhead_seconds;
    const int used_slots_a = std::min(dep_a.total_slots, s.tasks);
    const double tail =
        task_seconds_a > 0 ? std::max(1.0, s.duration * used_slots_a / task_seconds_a) : 1.0;

    const double task_seconds_b = cpu_b + gc_b + disk_b + net_b + spill_b + overhead_b;
    const int used_slots_b = std::min(dep_b.total_slots, tasks_b);
    total += task_seconds_b / used_slots_b * tail + cost_.stage_overhead +
             tasks_b * cost_.per_task_driver;
  }
  out.runtime = total;
  return out;
}

}  // namespace stune::disc
