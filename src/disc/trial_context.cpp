#include "disc/trial_context.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "dag/plan.hpp"
#include "simcore/check.hpp"
#include "simcore/mutex.hpp"

namespace stune::disc {

void TrialContext::clear() {
  arena_.reset();
  topo_fp_ = 0;
  topo_ = dag::PlanTopology{};
  contention_basis_ = 0;
  cont_proc_.reset();
  cont_samples_.clear();
  draw_basis_ = 0;
  draws_.clear();
  draw_hits_ = 0;
  draw_misses_ = 0;
  outcomes_.clear();
  outcome_hits_ = 0;
  outcome_misses_ = 0;
}

const dag::PlanTopology& TrialContext::topology(const dag::PhysicalPlan& plan) {
  const std::uint64_t fp = dag::topology_fingerprint(plan);
  if (topo_fp_ != fp) {
    topo_ = dag::build_topology(plan);
    topo_fp_ = fp;
  }
  return topo_;
}

TrialContextPool::TrialContextPool(std::size_t contexts) : size_(contexts) {
  STUNE_CHECK_GT(contexts, 0u);
  free_.reserve(contexts);
  for (std::size_t i = 0; i < contexts; ++i) free_.push_back(std::make_unique<TrialContext>());
}

TrialContextPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_), ctx_(std::move(other.ctx_)) {
  other.pool_ = nullptr;
}

TrialContextPool::Lease::~Lease() {
  if (pool_ != nullptr && ctx_ != nullptr) pool_->release(std::move(ctx_));
}

TrialContextPool::Lease TrialContextPool::acquire() {
  simcore::MutexLock lock(mu_);
  while (free_.empty()) cv_.wait(mu_);
  std::unique_ptr<TrialContext> ctx = std::move(free_.back());
  free_.pop_back();
  return Lease(this, std::move(ctx));
}

std::size_t TrialContextPool::leased() const {
  simcore::MutexLock lock(mu_);
  return size_ - free_.size();
}

void TrialContextPool::release(std::unique_ptr<TrialContext> ctx) {
  {
    simcore::MutexLock lock(mu_);
    free_.push_back(std::move(ctx));
  }
  cv_.notify_one();
}

}  // namespace stune::disc
