#include "disc/cost_model.hpp"

#include <cstdint>

#include "simcore/rng.hpp"

namespace stune::disc {

std::uint64_t CostModel::fingerprint() const {
  using simcore::hash_combine;
  using simcore::hash_double;
  std::uint64_t h = hash_double(static_cast<double>(input_split));
  for (const double v :
       {cached_read_bw, deser_expansion, java_ser, java_deser, kryo_ser, kryo_deser,
        java_gc_penalty, per_record_cpu, task_overhead, stage_overhead, per_task_driver,
        job_overhead, flush_seek_hdd, flush_seek_ebs, flush_seek_nvme, shuffle_sort_cpu,
        fetch_overhead_mib, conn_penalty, spill_pass_cost, spill_oom_headroom,
        oom_attempt_fraction, gc_base, gc_coef, straggler_prob, straggler_slowdown,
        speculation_tax, executor_failure_rate, failure_rerun_fraction, remote_read_base,
        locality_decay, locality_wait_cost, broadcast_block_overhead, broadcast_pipeline_stall}) {
    h = hash_combine(h, hash_double(v));
  }
  const std::uint64_t gates = (enable_recompute_penalty ? 1ULL : 0ULL) |
                              (enable_spill ? 2ULL : 0ULL) | (enable_gc ? 4ULL : 0ULL) |
                              (enable_oom ? 8ULL : 0ULL);
  return hash_combine(h, gates);
}

}  // namespace stune::disc
