#include "disc/eventlog.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace stune::disc {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

void append_kv(std::ostringstream& out, const char* key, double value, bool* first) {
  if (!*first) out << ",";
  *first = false;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out << "\"" << key << "\":" << buf;
}

void append_kv(std::ostringstream& out, const char* key, std::uint64_t value, bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":" << value;
}

void append_kv(std::ostringstream& out, const char* key, const std::string& value, bool* first) {
  if (!*first) out << ",";
  *first = false;
  out << "\"" << key << "\":\"" << escape(value) << "\"";
}

/// Minimal extractor for the fixed schema this module itself emits.
class Line {
 public:
  explicit Line(const std::string& text) : text_(text) {}

  bool has(const std::string& key) const { return find(key) != std::string::npos; }

  double number(const std::string& key) const {
    const auto pos = value_start(key);
    return std::strtod(text_.c_str() + pos, nullptr);
  }

  std::uint64_t integer(const std::string& key) const {
    const auto pos = value_start(key);
    return std::strtoull(text_.c_str() + pos, nullptr, 10);
  }

  std::string string(const std::string& key) const {
    auto pos = value_start(key);
    if (text_[pos] != '"') throw std::invalid_argument("event log: expected string for " + key);
    ++pos;
    std::string raw;
    while (pos < text_.size() && text_[pos] != '"') {
      if (text_[pos] == '\\' && pos + 1 < text_.size()) raw += text_[pos++];
      raw += text_[pos++];
    }
    return unescape(raw);
  }

 private:
  std::size_t find(const std::string& key) const { return text_.find("\"" + key + "\":"); }

  std::size_t value_start(const std::string& key) const {
    const auto pos = find(key);
    if (pos == std::string::npos) {
      throw std::invalid_argument("event log: missing key '" + key + "'");
    }
    return pos + key.size() + 3;
  }

  const std::string& text_;
};

}  // namespace

std::string to_event_log(const ExecutionReport& r) {
  std::ostringstream out;
  {
    bool first = true;
    out << "{";
    append_kv(out, "event", std::string("job_start"), &first);
    append_kv(out, "executors", static_cast<std::uint64_t>(r.executors), &first);
    append_kv(out, "total_slots", static_cast<std::uint64_t>(r.total_slots), &first);
    append_kv(out, "exec_mem_per_task", r.execution_memory_per_task, &first);
    append_kv(out, "storage_mem_total", r.storage_memory_total, &first);
    append_kv(out, "cache_hit", r.cache_hit_fraction, &first);
    out << "}\n";
  }
  for (const auto& s : r.stages) {
    bool first = true;
    out << "{";
    append_kv(out, "event", std::string("stage_completed"), &first);
    append_kv(out, "stage_id", static_cast<std::uint64_t>(s.stage_id), &first);
    append_kv(out, "label", s.label, &first);
    append_kv(out, "tasks", static_cast<std::uint64_t>(s.tasks), &first);
    append_kv(out, "waves", static_cast<std::uint64_t>(s.waves), &first);
    append_kv(out, "start", s.start, &first);
    append_kv(out, "duration", s.duration, &first);
    append_kv(out, "cpu", s.cpu_seconds, &first);
    append_kv(out, "gc", s.gc_seconds, &first);
    append_kv(out, "disk", s.disk_seconds, &first);
    append_kv(out, "net", s.net_seconds, &first);
    append_kv(out, "spill", s.spill_seconds, &first);
    append_kv(out, "overhead", s.overhead_seconds, &first);
    append_kv(out, "input_bytes", s.input_bytes, &first);
    append_kv(out, "shuffle_read", s.shuffle_read_bytes, &first);
    append_kv(out, "shuffle_write", s.shuffle_write_bytes, &first);
    append_kv(out, "spilled", s.spilled_bytes, &first);
    append_kv(out, "cache_hit", s.cache_hit_fraction, &first);
    append_kv(out, "failed_tasks", static_cast<std::uint64_t>(s.failed_tasks), &first);
    // Fault-recovery fields are elided on fault-free stages to keep the
    // common-case log compact (the parser treats absence as zero).
    if (s.lost_executors > 0) {
      append_kv(out, "lost_executors", static_cast<std::uint64_t>(s.lost_executors), &first);
    }
    if (s.lost_vms > 0) append_kv(out, "lost_vms", static_cast<std::uint64_t>(s.lost_vms), &first);
    if (s.speculative_tasks > 0) {
      append_kv(out, "speculative_tasks", static_cast<std::uint64_t>(s.speculative_tasks), &first);
    }
    if (s.recovery_seconds > 0.0) append_kv(out, "recovery", s.recovery_seconds, &first);
    out << "}\n";
  }
  {
    bool first = true;
    out << "{";
    append_kv(out, "event", std::string("job_end"), &first);
    append_kv(out, "success", std::uint64_t{r.success ? 1u : 0u}, &first);
    append_kv(out, "runtime", r.runtime, &first);
    append_kv(out, "cost", r.cost, &first);
    if (!r.failure_reason.empty()) append_kv(out, "failure", r.failure_reason, &first);
    if (r.infra_fault) append_kv(out, "infra_fault", std::uint64_t{1}, &first);
    out << "}\n";
  }
  return out.str();
}

ExecutionReport from_event_log(const std::string& log) {
  ExecutionReport r;
  bool saw_start = false, saw_end = false;
  std::istringstream in(log);
  std::string text;
  while (std::getline(in, text)) {
    if (text.empty()) continue;
    const Line line(text);
    const std::string event = line.string("event");
    if (event == "job_start") {
      saw_start = true;
      r.executors = static_cast<int>(line.integer("executors"));
      r.total_slots = static_cast<int>(line.integer("total_slots"));
      r.execution_memory_per_task = line.integer("exec_mem_per_task");
      r.storage_memory_total = line.integer("storage_mem_total");
      r.cache_hit_fraction = line.number("cache_hit");
    } else if (event == "stage_completed") {
      StageMetrics s;
      s.stage_id = static_cast<int>(line.integer("stage_id"));
      s.label = line.string("label");
      s.tasks = static_cast<int>(line.integer("tasks"));
      s.waves = static_cast<int>(line.integer("waves"));
      s.start = line.number("start");
      s.duration = line.number("duration");
      s.cpu_seconds = line.number("cpu");
      s.gc_seconds = line.number("gc");
      s.disk_seconds = line.number("disk");
      s.net_seconds = line.number("net");
      s.spill_seconds = line.number("spill");
      s.overhead_seconds = line.number("overhead");
      s.input_bytes = line.integer("input_bytes");
      s.shuffle_read_bytes = line.integer("shuffle_read");
      s.shuffle_write_bytes = line.integer("shuffle_write");
      s.spilled_bytes = line.integer("spilled");
      s.cache_hit_fraction = line.number("cache_hit");
      s.failed_tasks = static_cast<int>(line.integer("failed_tasks"));
      if (line.has("lost_executors")) {
        s.lost_executors = static_cast<int>(line.integer("lost_executors"));
      }
      if (line.has("lost_vms")) s.lost_vms = static_cast<int>(line.integer("lost_vms"));
      if (line.has("speculative_tasks")) {
        s.speculative_tasks = static_cast<int>(line.integer("speculative_tasks"));
      }
      if (line.has("recovery")) s.recovery_seconds = line.number("recovery");
      r.stages.push_back(std::move(s));
    } else if (event == "job_end") {
      saw_end = true;
      r.success = line.integer("success") != 0;
      r.runtime = line.number("runtime");
      r.cost = line.number("cost");
      if (line.has("failure")) r.failure_reason = line.string("failure");
      if (line.has("infra_fault")) r.infra_fault = line.integer("infra_fault") != 0;
    } else {
      throw std::invalid_argument("event log: unknown event '" + event + "'");
    }
  }
  if (!saw_start || !saw_end) {
    throw std::invalid_argument("event log: incomplete (missing job_start/job_end)");
  }
  r.finalize_aggregates();
  return r;
}

}  // namespace stune::disc
