#include "disc/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "cluster/audit.hpp"
#include "config/audit.hpp"
#include "dag/audit.hpp"
#include "disc/audit.hpp"
#include "disc/trial_context.hpp"
#include "simcore/check.hpp"
#include "simcore/rng.hpp"

// Two orchestrations, one cost model. run() is the event-driven path: plan
// topology, contention samples and per-stage random draws come from a
// TrialContext and per-trial scratch from its arena. run_wave_rescan() is
// the reference path preserving the original orchestration — index-order
// stage walk with a parent-finish rescan, live draws, a fresh
// priority-queue schedule per stage. Both feed the identical simulate_stage
// body below, and the engine's contract is that they produce bitwise-equal
// ExecutionReports (engine_properties_test enforces it across seeds, chaos
// levels and cluster sizes). This TU is compiled with -ffp-contract=off
// even in native-kernel builds so that contract holds against binaries
// built without -mfma (see src/disc/CMakeLists.txt).

namespace stune::disc {

namespace {

constexpr double kGiBf = 1024.0 * 1024.0 * 1024.0;
constexpr double kMiBf = 1024.0 * 1024.0;

double flush_seek(const CostModel& cm, cluster::StorageKind kind) {
  switch (kind) {
    case cluster::StorageKind::kHdd: return cm.flush_seek_hdd;
    case cluster::StorageKind::kEbs: return cm.flush_seek_ebs;
    case cluster::StorageKind::kNvme: return cm.flush_seek_nvme;
  }
  return cm.flush_seek_ebs;
}

/// Greedy list scheduling of task durations onto `slots` identical slots.
/// Returns the makespan; `waves` gets ceil(tasks/slots). Reference
/// implementation: a fresh priority queue per call, exactly as the original
/// engine scheduled.
double schedule_tasks(std::span<const double> durations, int slots, int* waves) {
  *waves = static_cast<int>(
      (durations.size() + static_cast<std::size_t>(slots) - 1) / static_cast<std::size_t>(slots));
  if (durations.empty()) return 0.0;
  if (static_cast<std::size_t>(slots) >= durations.size()) {
    return *std::max_element(durations.begin(), durations.end());
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int i = 0; i < slots; ++i) free_at.push(0.0);
  double makespan = 0.0;
  for (const double t : durations) {
    const double start = free_at.top();
    free_at.pop();
    const double finish = start + t;
    makespan = std::max(makespan, finish);
    free_at.push(finish);
  }
  return makespan;
}

/// The same greedy schedule over arena scratch: the slot heap lives in a
/// bump-allocated span instead of a heap-allocated priority queue. Pops the
/// same minima and adds the same values, so the makespan is bitwise equal
/// to schedule_tasks().
double schedule_tasks_arena(std::span<const double> durations, int slots, int* waves,
                            simcore::TrialArena& arena) {
  *waves = static_cast<int>(
      (durations.size() + static_cast<std::size_t>(slots) - 1) / static_cast<std::size_t>(slots));
  if (durations.empty()) return 0.0;
  if (static_cast<std::size_t>(slots) >= durations.size()) {
    return *std::max_element(durations.begin(), durations.end());
  }
  // Arena spans arrive zeroed, and all-equal keys already satisfy the
  // min-heap invariant.
  std::span<double> free_at = arena.alloc<double>(static_cast<std::size_t>(slots));
  double makespan = 0.0;
  for (const double t : durations) {
    std::pop_heap(free_at.begin(), free_at.end(), std::greater<>{});
    const double finish = free_at.back() + t;
    makespan = std::max(makespan, finish);
    free_at.back() = finish;
    std::push_heap(free_at.begin(), free_at.end(), std::greater<>{});
  }
  return makespan;
}

/// GC time as a fraction of CPU time, given heap pressure in [0, 1.25].
double gc_overhead(const CostModel& cm, double pressure) {
  const double p = std::clamp(pressure, 0.0, 1.25);
  return cm.gc_base + cm.gc_coef * p * p * p * p / std::max(0.08, 1.3 - p);
}

struct SerializerCosts {
  double ser;    // seconds per raw byte, reference core
  double deser;
};

SerializerCosts serializer_costs(const CostModel& cm, config::Serializer s) {
  if (s == config::Serializer::kKryo) return {cm.kryo_ser, cm.kryo_deser};
  return {cm.java_ser, cm.java_deser};
}

/// Every report leaves through this gate; the conservation laws are
/// re-checked on failure reports too.
ExecutionReport finalize_report(ExecutionReport r, bool auditing) {
  r.finalize_aggregates();
  if (auditing) simcore::enforce_invariants(audit(r), "execution report");
  return r;
}

/// Run-wide values shared by both orchestrations: resolved deployment,
/// memory/cache accounting, serializer/codec costs and the fault schedule,
/// computed once before any stage executes.
struct Prep {
  Deployment dep;
  config::CodecProfile codec{};
  SerializerCosts ser{};
  double heap = 0.0;
  double cache_hit = 0.0;  // initial hit fraction; runs mutate their copy
  double storage_used_pe = 0.0;
  double exec_mem_per_task = 0.0;
  std::uint64_t master_hash = 0;
  int vms = 0;
  double core_speed = 0.0;
  int reducers = 0;
  double seek = 0.0;
  bool chaos = false;
  double vm_hazard = 0.0;
  int abort_stage = -1;
};

/// Audits, deployment resolution, memory & cache accounting, deterministic
/// seeding and fault setup. Returns false when the cluster manager rejects
/// the deployment, with `report` carrying the failure.
bool prepare_run(const cluster::Cluster& cluster, const EngineOptions& options,
                 const dag::PhysicalPlan& plan, const config::SparkConf& conf, bool auditing,
                 Prep* p, ExecutionReport* report) {
  const CostModel& cm = options.cost;
  if (auditing) {
    simcore::enforce_invariants(dag::audit(plan), "physical plan");
    simcore::enforce_invariants(cluster::audit(cluster), "cluster");
  }

  p->dep = resolve_deployment(conf, cluster);
  if (auditing) simcore::enforce_invariants(audit(p->dep, conf, cluster), "deployment");
  if (!p->dep.viable) {
    // The cluster manager rejects the request after a short negotiation.
    report->failure_reason = p->dep.failure;
    report->runtime = 45.0;
    report->cost = cluster.cost_of(report->runtime);
    return false;
  }
  report->executors = p->dep.executors;
  report->total_slots = p->dep.total_slots;

  // -- memory & cache accounting -------------------------------------------------
  p->codec = config::codec_profile(conf.codec, conf.compression_level);
  p->ser = serializer_costs(cm, conf.serializer);
  p->heap = static_cast<double>(p->dep.heap_per_executor);

  const double cache_raw = static_cast<double>(plan.total_cache_bytes());
  const double cache_stored = cache_raw * (conf.rdd_compress ? p->codec.ratio : cm.deser_expansion);
  const double storage_capacity =
      static_cast<double>(p->dep.storage_target_per_executor) * p->dep.executors;
  p->cache_hit = cache_raw > 0.0 ? std::min(1.0, storage_capacity / cache_stored) : 1.0;
  p->storage_used_pe = std::min(cache_stored / p->dep.executors,
                                static_cast<double>(p->dep.storage_target_per_executor));
  const double exec_mem_pe = static_cast<double>(p->dep.unified_per_executor) - p->storage_used_pe;
  p->exec_mem_per_task = std::max(1.0, exec_mem_pe / p->dep.slots_per_executor);

  report->execution_memory_per_task = static_cast<Bytes>(p->exec_mem_per_task);
  report->storage_memory_total = static_cast<Bytes>(storage_capacity);
  report->cache_hit_fraction = p->cache_hit;

  // -- deterministic randomness -----------------------------------------------------
  p->master_hash = simcore::hash_combine(
      options.seed,
      simcore::hash_combine(simcore::hash_string(plan.workload), plan.input_bytes));

  p->vms = cluster.vm_count();
  p->core_speed = cluster.type().core_speed;
  p->reducers = plan.is_sql ? conf.sql_shuffle_partitions : conf.default_parallelism;
  p->seek = flush_seek(cm, cluster.type().storage);

  // -- injected faults ---------------------------------------------------------------
  // All fault logic is gated on `chaos`; with an inactive plan the run is
  // bitwise identical to a faultless build (no extra draws, same fleet).
  p->chaos = options.faults.active();
  p->vm_hazard = cluster.revocation_hazard();
  p->abort_stage =
      p->chaos && options.faults.transient_error()
          ? static_cast<int>(options.faults.error_position() *
                             static_cast<double>(plan.stages.size()))
          : -1;
  return true;
}

/// Fleet state threaded through a run as faults shrink it.
struct Fleet {
  int vms_alive = 0;
  int executors_alive = 0;
  int slots_alive = 0;
};

/// The task draws one stage consumes: skew factors and straggler flags in
/// the engine's interleaved draw order, plus the stage generator positioned
/// after the task loop (the executor-failure draws that follow depend on
/// the deployment and replay live from it).
struct DrawView {
  std::span<const double> skew;
  std::span<const unsigned char> straggler;
  simcore::Rng rng_after{0};
};

/// Run-invariant references the stage body reads.
struct RunCtx {
  const cluster::Cluster& cluster;
  const EngineOptions& options;
  const dag::PhysicalPlan& plan;
  const config::SparkConf& conf;
  const Prep& prep;
  bool auditing = false;
};

enum class StageStatus { kContinue, kFatal };

/// One stage of the cost model, shared verbatim by both orchestrations:
/// injected faults, task-set sizing, broadcast, the per-task duration loop,
/// scheduling, recovery and the collect action. `start0` is the stage's
/// earliest start (run clock joined with parent finishes). DrawsFn supplies
/// the task draws for the computed task count, AllocFn the duration buffer,
/// SchedFn the makespan. On kFatal the failure report is fully assembled
/// except for final aggregation (caller passes it through finalize_report).
///
/// When `cache_enabled` (the event-driven path with a TrialContext), the
/// task loop through the executor-failure block is memoized: `outcome_base`
/// seeds a key folding the bit pattern of every scalar that span of code
/// reads, LookupFn/StoreFn front the context's StageOutcome map, and a hit
/// replays the stored result bitwise instead of recomputing O(tasks) work.
/// Chaos runs and stages that die to task OOM never enter the cache; the
/// start-dependent pieces (stage start, broadcast, collect) stay live.
template <typename DrawsFn, typename AllocFn, typename SchedFn, typename LookupFn,
          typename StoreFn>
StageStatus simulate_stage(const RunCtx& rc, const dag::StagePlan& s,
                           const cluster::ContentionSample& cont, Fleet* fleet,
                           double* cache_hit, double clock, double start0, DrawsFn&& draws_fn,
                           AllocFn&& alloc_fn, SchedFn&& sched_fn, bool cache_enabled,
                           std::uint64_t outcome_base, LookupFn&& lookup_fn, StoreFn&& store_fn,
                           ExecutionReport* report, double* out_finish) {
  const CostModel& cm = rc.options.cost;
  const config::SparkConf& conf = rc.conf;
  const Deployment& dep = rc.prep.dep;
  const simcore::FaultPlan& fplan = rc.options.faults;
  const bool chaos = rc.prep.chaos;
  const double heap = rc.prep.heap;
  const auto& codec = rc.prep.codec;
  const auto& ser = rc.prep.ser;
  const double exec_mem_per_task = rc.prep.exec_mem_per_task;
  const double storage_used_pe = rc.prep.storage_used_pe;

  StageMetrics m;
  m.stage_id = s.id;
  m.label = s.label;

  simcore::StageFaults sfaults;
  if (chaos) {
    sfaults = fplan.stage_faults(s.id, fleet->executors_alive, fleet->vms_alive,
                                 rc.prep.vm_hazard);
    if (sfaults.lost_vms > 0) {
      // Spot revocation: permanent for the rest of the run. The fleet
      // shrinks before this stage schedules; shuffle and cached blocks on
      // the reclaimed VMs are recovered below with the executor-loss work.
      m.lost_vms = std::min(sfaults.lost_vms, fleet->vms_alive);
      fleet->vms_alive -= m.lost_vms;
      if (fleet->vms_alive == 0) {
        report->failure_reason = "all spot capacity revoked mid-run";
        report->infra_fault = true;
        report->runtime = clock + 30.0;  // drain + surrender
        report->cost = rc.cluster.cost_of(report->runtime);
        report->stages.push_back(m);
        return StageStatus::kFatal;
      }
      fleet->executors_alive = std::max(
          1, std::min(fleet->executors_alive, dep.executors_per_vm * fleet->vms_alive));
      fleet->slots_alive = fleet->executors_alive * dep.slots_per_executor;
    }
    if (sfaults.lost_executors > 0) {
      // Executor processes crash mid-wave; the driver respawns them after
      // the stage, so the loss is transient but the in-flight work is not.
      m.lost_executors = std::min(sfaults.lost_executors, fleet->executors_alive);
    }
  }
  // Slots this stage actually schedules on: the surviving fleet minus the
  // executors that die mid-wave (at least one executor keeps going).
  const int sched_slots =
      std::max(dep.slots_per_executor,
               fleet->slots_alive - m.lost_executors * dep.slots_per_executor);

  const double speed = rc.prep.core_speed * cont.cpu_factor;

  // Partitions of this stage.
  int tasks;
  if (s.reads_shuffle()) {
    tasks = rc.plan.is_sql ? conf.sql_shuffle_partitions : conf.default_parallelism;
  } else if (s.reads_source()) {
    tasks = static_cast<int>((s.source_read_bytes + cm.input_split - 1) / cm.input_split);
  } else {
    tasks = rc.plan.is_sql ? conf.sql_shuffle_partitions : conf.default_parallelism;
  }
  tasks = std::max(1, tasks);
  m.tasks = tasks;
  m.input_bytes = s.total_input_bytes();
  m.shuffle_read_bytes = s.shuffle_read_bytes();
  m.shuffle_write_bytes = s.shuffle_write_bytes;
  m.cache_hit_fraction = s.materialized_parent_cached ? *cache_hit : 0.0;

  // Bandwidth shares: tasks running concurrently on one VM divide its
  // disk and NIC.
  const int concurrent_per_vm =
      std::max(1, std::min(dep.slots_per_vm,
                           static_cast<int>((tasks + fleet->vms_alive - 1) / fleet->vms_alive)));
  const double disk_share = rc.cluster.disk_bw_per_vm() * cont.disk_factor / concurrent_per_vm;
  const double net_share = rc.cluster.net_bw_per_vm() * cont.net_factor / concurrent_per_vm;

  // Stage-level start: parents done + driver bookkeeping.
  double start = start0;
  start += cm.stage_overhead + tasks * cm.per_task_driver;
  m.start = start;

  // Broadcast distribution before tasks launch.
  if (s.broadcast_bytes > 0) {
    const double b = static_cast<double>(s.broadcast_bytes);
    if (b * cm.deser_expansion > 0.7 * static_cast<double>(dep.driver_heap)) {
      report->failure_reason = "driver OOM while building broadcast variable";
      report->runtime = start + 5.0;
      report->cost = rc.cluster.cost_of(report->runtime);
      report->stages.push_back(m);
      return StageStatus::kFatal;
    }
    const double block = conf.broadcast_block_size_mib * kMiBf;
    const double blocks = std::max(1.0, b / block);
    const double vm_net = rc.cluster.net_bw_per_vm() * cont.net_factor;
    const double torrent_rounds =
        1.0 + std::log2(std::max(2.0, static_cast<double>(fleet->vms_alive)));
    const double xfer = b / vm_net * torrent_rounds;
    const double control = blocks * cm.broadcast_block_overhead +
                           block / vm_net * cm.broadcast_pipeline_stall;
    start += xfer + control;
    m.net_seconds += xfer + control;
  }

  // -- per-task durations -------------------------------------------------------------
  const double remote_frac =
      cm.remote_read_base * std::exp(-conf.locality_wait_s / cm.locality_decay);
  const double inflight_mib = conf.reducer_max_inflight_mib;
  const double fetch_eff = inflight_mib / (inflight_mib + cm.fetch_overhead_mib);
  const double conn_eff =
      1.0 - cm.conn_penalty / static_cast<double>(conf.shuffle_connections_per_peer);
  const double net_eff = std::max(0.05, fetch_eff * conn_eff);

  const double src_per_task = static_cast<double>(s.source_read_bytes) / tasks;
  const double mat_per_task = static_cast<double>(s.materialized_read_bytes) / tasks;
  const double sread_per_task = static_cast<double>(s.shuffle_read_bytes()) / tasks;
  const double swrite_per_task = static_cast<double>(s.shuffle_write_bytes) / tasks;
  const double cpu_per_task = s.cpu_ref_seconds / tasks;
  const double records_per_task = s.records / tasks;
  const double save_per_task = (s.result_bytes > 0 && rc.plan.action == dag::ActionKind::kSave)
                                   ? static_cast<double>(s.result_bytes) / tasks
                                   : 0.0;

  const double mu = -0.5 * s.skew_sigma * s.skew_sigma;

  // Memoization key: the bit patterns of every scalar the loop, the
  // schedule and the executor-failure block read. `outcome_base` already
  // folds the master stream hash (seed, workload, input — and with it the
  // draws), the simulator context (cluster, cost model, contention, fault
  // profile) and the plan fingerprint (every per-stage constant), so only
  // the per-run derived values are folded here. A missing component would
  // alias two different stages — engine_properties_test sweeps
  // configurations through one shared context against the live reference
  // path to keep this list honest.
  const bool cacheable = cache_enabled && !chaos;
  std::uint64_t key = 0;
  if (cacheable) {
    key = outcome_base;
    const auto fold = [&key](std::uint64_t v) { key = simcore::hash_combine(key, v); };
    const auto fold_d = [&fold](double v) { fold(simcore::hash_double(v)); };
    fold(static_cast<std::uint64_t>(s.id));
    fold(static_cast<std::uint64_t>(tasks));
    fold(static_cast<std::uint64_t>(sched_slots));
    fold(static_cast<std::uint64_t>(fleet->vms_alive));
    fold(static_cast<std::uint64_t>(dep.slots_per_vm));
    fold(static_cast<std::uint64_t>(dep.slots_per_executor));
    fold(static_cast<std::uint64_t>(dep.executors));
    fold(static_cast<std::uint64_t>(dep.total_slots));
    fold(static_cast<std::uint64_t>(rc.prep.reducers));
    fold(static_cast<std::uint64_t>(conf.sort_bypass_merge_threshold));
    fold((conf.rdd_compress ? 1ULL : 0ULL) | (conf.shuffle_compress ? 2ULL : 0ULL) |
         (conf.shuffle_spill_compress ? 4ULL : 0ULL) | (conf.speculation ? 8ULL : 0ULL) |
         (conf.serializer == config::Serializer::kJava ? 16ULL : 0ULL));
    fold_d(*cache_hit);
    fold_d(exec_mem_per_task);
    fold_d(storage_used_pe);
    fold_d(heap);
    fold_d(cont.cpu_factor);
    fold_d(cont.disk_factor);
    fold_d(cont.net_factor);
    fold_d(speed);
    fold_d(disk_share);
    fold_d(net_share);
    fold_d(remote_frac);
    fold_d(net_eff);
    fold_d(ser.ser);
    fold_d(ser.deser);
    fold_d(codec.ratio);
    fold_d(codec.compress_cpb);
    fold_d(codec.decompress_cpb);
    fold_d(conf.locality_wait_s);
    fold_d(conf.speculation_multiplier);
    fold_d(static_cast<double>(conf.shuffle_file_buffer_kib));
    fold_d(rc.prep.seek);
  }

  int waves = 0;
  double makespan = 0.0;
  bool replayed = false;
  if (cacheable) {
    if (const StageOutcome* o = lookup_fn(key)) {
      // Bitwise replay: the pre-loop state of `m` (broadcast net_seconds
      // included) is identical to the run that stored the outcome, so
      // assigning the absolute totals reproduces the live accumulation.
      waves = o->waves;
      makespan = o->makespan;
      m.cpu_seconds = o->cpu_seconds;
      m.gc_seconds = o->gc_seconds;
      m.disk_seconds = o->disk_seconds;
      m.net_seconds = o->net_seconds;
      m.spill_seconds = o->spill_seconds;
      m.overhead_seconds = o->overhead_seconds;
      m.spilled_bytes = static_cast<Bytes>(o->spilled_bytes);
      m.failed_tasks = o->failed_tasks;
      if (o->exec_failures) {
        *cache_hit *= o->cache_hit_mult;
        report->cache_hit_fraction = *cache_hit;
      }
      replayed = true;
    }
  }

  if (!replayed) {
  const DrawView draws = draws_fn(s, tasks, mu);
  std::span<double> durations = alloc_fn(tasks);
  int oom_tasks = 0;
  double oom_nominal_time = 0.0;

  for (int i = 0; i < tasks; ++i) {
    const double skew = draws.skew[static_cast<std::size_t>(i)];
    double t_cpu = 0.0, t_disk = 0.0, t_net = 0.0, t_spill = 0.0, t_over = 0.0;

    // Pipeline compute.
    t_cpu += cpu_per_task * skew / speed;
    t_cpu += records_per_task * skew * cm.per_record_cpu / speed;

    // Source reads (with locality).
    if (src_per_task > 0.0) {
      const double b = src_per_task * skew;
      t_disk += b * (1.0 - remote_frac) / disk_share;
      t_net += b * remote_frac / net_share;
      t_over += conf.locality_wait_s * cm.locality_wait_cost;
    }

    // Materialized parent reads (cache hit / lineage recompute).
    if (mat_per_task > 0.0) {
      const double b = mat_per_task * skew;
      const double hit = s.materialized_parent_cached ? *cache_hit : 0.0;
      const double b_hit = b * hit;
      const double b_miss = b - b_hit;
      t_cpu += b_hit / cm.cached_read_bw;
      if (conf.rdd_compress && b_hit > 0.0) {
        t_cpu += b_hit * (codec.decompress_cpb + ser.deser) / speed;
      }
      if (b_miss > 0.0 && cm.enable_recompute_penalty) {
        t_cpu += b_miss * (s.recompute_cpu_per_gib / kGiBf) / speed;
        t_disk += b_miss * 0.8 / disk_share;
      }
    }

    // Shuffle read + aggregation memory behaviour.
    double in_mem_ws = 0.0;
    if (sread_per_task > 0.0) {
      const double b = sread_per_task * skew;
      const double wire = b * (conf.shuffle_compress ? codec.ratio : 1.0);
      t_net += wire / (net_share * net_eff);
      if (conf.shuffle_compress) t_cpu += b * codec.decompress_cpb / speed;
      t_cpu += b * ser.deser / speed;

      const double ws = b * s.agg_memory_factor * cm.deser_expansion;
      if (cm.enable_oom && ws > exec_mem_per_task * cm.spill_oom_headroom) {
        ++oom_tasks;
      } else if (cm.enable_spill && ws > exec_mem_per_task) {
        const double spill_raw = (ws - exec_mem_per_task) / cm.deser_expansion;
        const double passes = 1.0 + cm.spill_pass_cost * std::log2(ws / exec_mem_per_task);
        const double spill_wire = spill_raw * (conf.shuffle_spill_compress ? codec.ratio : 1.0);
        double t = passes * spill_wire * 2.0 / disk_share;
        t += passes * spill_raw * (ser.ser + ser.deser) / speed;
        if (conf.shuffle_spill_compress) {
          t += passes * spill_raw * (codec.compress_cpb + codec.decompress_cpb) / speed;
        }
        t_spill += t;
        m.spilled_bytes += static_cast<Bytes>(spill_raw);
        in_mem_ws = exec_mem_per_task;
      } else {
        in_mem_ws = ws;
      }
    }

    // Shuffle write (sort, serialize, compress, flush).
    if (swrite_per_task > 0.0) {
      const double b = swrite_per_task * skew;
      if (rc.prep.reducers > conf.sort_bypass_merge_threshold) {
        t_cpu += b * cm.shuffle_sort_cpu / speed;
      }
      t_cpu += b * ser.ser / speed;
      double wire = b;
      if (conf.shuffle_compress) {
        t_cpu += b * codec.compress_cpb / speed;
        wire = b * codec.ratio;
      }
      t_disk += wire / disk_share;
      const double flushes = wire / (conf.shuffle_file_buffer_kib * 1024.0);
      t_disk += flushes * rc.prep.seek;
    }

    // Saving final output.
    if (save_per_task > 0.0) {
      const double b = save_per_task * skew;
      t_cpu += b * ser.ser / speed;
      t_disk += b / disk_share;
    }

    // GC pressure from cached data, aggregation buffers and broadcasts.
    double t_gc = 0.0;
    if (cm.enable_gc) {
      const double bcast = static_cast<double>(s.broadcast_bytes) * cm.deser_expansion;
      const double pressure =
          (storage_used_pe + in_mem_ws * dep.slots_per_executor + bcast + 0.10 * heap) / heap;
      double factor = gc_overhead(cm, pressure);
      if (conf.serializer == config::Serializer::kJava) factor *= cm.java_gc_penalty;
      t_gc = t_cpu * factor;
    }

    double total = t_cpu + t_gc + t_disk + t_net + t_spill + t_over + cm.task_overhead;

    // Environmental stragglers; speculation re-launches bound the damage.
    if (draws.straggler[static_cast<std::size_t>(i)] != 0) {
      double slow = cm.straggler_slowdown;
      if (conf.speculation) slow = std::min(slow, conf.speculation_multiplier + 0.3);
      total *= slow;
    }
    if (conf.speculation) total *= 1.0 + cm.speculation_tax;

    if (cm.enable_oom && sread_per_task > 0.0 &&
        sread_per_task * skew * s.agg_memory_factor * cm.deser_expansion >
            exec_mem_per_task * cm.spill_oom_headroom) {
      oom_nominal_time += total;
    }

    durations[static_cast<std::size_t>(i)] = total;
    m.cpu_seconds += t_cpu;
    m.gc_seconds += t_gc;
    m.disk_seconds += t_disk;
    m.net_seconds += t_net;
    m.spill_seconds += t_spill;
    m.overhead_seconds += t_over + cm.task_overhead;
  }

  if (oom_tasks > 0) {
    // Retries land on executors with the same memory budget: determinedly
    // fatal. The job burns the configured number of attempts first.
    m.failed_tasks = oom_tasks;
    const double mean_failing = oom_nominal_time / oom_tasks;
    const double elapsed = conf.task_max_failures * mean_failing * cm.oom_attempt_fraction;
    m.duration = elapsed;
    report->stages.push_back(m);
    report->failure_reason = "task OOM: aggregation working set exceeds execution memory";
    report->runtime = start + elapsed;
    report->cost = rc.cluster.cost_of(report->runtime);
    return StageStatus::kFatal;
  }

  // Injected straggler burst: a deterministic subset of tasks runs slower.
  // With speculation on, a backup attempt launches once the configured
  // quantile of the wave has finished, bounding the damage — an earlier
  // quantile gives a tighter bound (and is what the new knob tunes).
  if (chaos && sfaults.straggler_factor > 1.0) {
    simcore::Rng vrng = fplan.stage_stream(s.id, 0x76696374696dULL);  // victims
    const double cap = conf.speculation_multiplier +
                       conf.speculation_quantile * (sfaults.straggler_factor - 1.0);
    for (double& d : durations) {
      if (!vrng.bernoulli(fplan.profile().straggler_victim_fraction)) continue;
      if (conf.speculation && cap < sfaults.straggler_factor) {
        d *= cap;
        ++m.speculative_tasks;
      } else {
        d *= sfaults.straggler_factor;
      }
    }
  }

  makespan = sched_fn(std::span<const double>(durations), sched_slots, &waves);

  // Recover work lost to executor crashes and revoked VMs: lost in-flight
  // tasks reschedule onto the surviving slots and lost shuffle partitions
  // recompute through lineage. The recovery is charged as extra makespan
  // plus a resubmit round-trip, and the cached blocks that died with the
  // fleet degrade the hit rate of later stages.
  if (chaos && (m.lost_executors > 0 || m.lost_vms > 0)) {
    const int lost_units = m.lost_executors + m.lost_vms * dep.executors_per_vm;
    const double lost_fraction =
        std::min(1.0, static_cast<double>(lost_units) / static_cast<double>(dep.executors));
    double task_seconds = 0.0;
    for (const double t : durations) task_seconds += t;
    const double redo = task_seconds * lost_fraction * cm.failure_rerun_fraction / sched_slots;
    makespan += redo + cm.stage_overhead;
    m.recovery_seconds = redo * sched_slots;
    m.failed_tasks = std::min(
        m.tasks,
        m.failed_tasks + static_cast<int>(lost_fraction * tasks * cm.failure_rerun_fraction));
    *cache_hit *= 1.0 - lost_fraction;
    report->cache_hit_fraction = *cache_hit;
  }

  // Executor failures mid-stage: lost in-flight work re-runs (lineage
  // makes this transparent but not free), and cached partitions held by
  // the dead executor degrade the hit rate of later stages until
  // recomputed.
  bool exec_failures = false;
  double cache_hit_mult = 1.0;
  if (cm.executor_failure_rate > 0.0) {
    simcore::Rng srng = draws.rng_after;
    int died = 0;
    for (int ex = 0; ex < dep.executors; ++ex) {
      if (srng.bernoulli(cm.executor_failure_rate)) ++died;
    }
    if (died > 0) {
      const double lost_fraction = static_cast<double>(died) / static_cast<double>(dep.executors);
      double task_seconds = 0.0;
      for (const double t : durations) task_seconds += t;
      const double redo =
          task_seconds * lost_fraction * cm.failure_rerun_fraction / dep.total_slots;
      makespan += redo + cm.stage_overhead;  // resubmit + rerun
      m.overhead_seconds += redo * dep.total_slots;
      m.failed_tasks += static_cast<int>(lost_fraction * tasks * cm.failure_rerun_fraction);
      // Cached blocks on the dead executors are gone; later stages pay
      // recompute until (in a real system) they are re-cached.
      exec_failures = true;
      cache_hit_mult = 1.0 - lost_fraction;
      *cache_hit *= cache_hit_mult;
      report->cache_hit_fraction = *cache_hit;
    }
  }

  if (cacheable) {
    StageOutcome o;
    o.makespan = makespan;
    o.waves = waves;
    o.cpu_seconds = m.cpu_seconds;
    o.gc_seconds = m.gc_seconds;
    o.disk_seconds = m.disk_seconds;
    o.net_seconds = m.net_seconds;
    o.spill_seconds = m.spill_seconds;
    o.overhead_seconds = m.overhead_seconds;
    o.spilled_bytes = static_cast<std::uint64_t>(m.spilled_bytes);
    o.failed_tasks = m.failed_tasks;
    o.exec_failures = exec_failures;
    o.cache_hit_mult = cache_hit_mult;
    store_fn(key, o);
  }
  }  // !replayed
  m.waves = waves;

  // Collect action: ship results to the driver and hold them there.
  if (s.result_bytes > 0 && rc.plan.action == dag::ActionKind::kCollect) {
    const double b = static_cast<double>(s.result_bytes);
    if (b * cm.deser_expansion > 0.7 * static_cast<double>(dep.driver_heap)) {
      report->failure_reason = "driver OOM while collecting results";
      report->runtime = start + makespan;
      report->cost = rc.cluster.cost_of(report->runtime);
      report->stages.push_back(m);
      return StageStatus::kFatal;
    }
    const double xfer = b / (rc.cluster.net_bw_per_vm() * cont.net_factor);
    makespan += xfer;
    m.net_seconds += xfer;
  }

  m.duration = makespan;
  *out_finish = start + makespan;
  if (rc.auditing) simcore::enforce_invariants(audit_stage(m, sched_slots), "stage metrics");
  report->stages.push_back(m);
  return StageStatus::kContinue;
}

/// The clock-exhausted epilogue shared by both orchestrations.
ExecutionReport finish_run(ExecutionReport report, const cluster::Cluster& cluster,
                           const simcore::FaultPlan& fplan, bool chaos, double clock,
                           bool auditing) {
  if (chaos && fplan.timeout()) {
    // The run hangs near the end (executors stop heartbeating); the driver
    // burns a multiple of the nominal runtime before giving up. Another
    // infrastructure fault: the configuration did its work.
    report.failure_reason = "trial timeout: executors stopped heartbeating";
    report.infra_fault = true;
    report.runtime = clock * fplan.profile().timeout_hang_factor;
    report.cost = cluster.cost_of(report.runtime);
    return finalize_report(std::move(report), auditing);
  }
  report.success = true;
  report.runtime = clock;
  report.cost = cluster.cost_of(report.runtime);
  return finalize_report(std::move(report), auditing);
}

ExecutionReport abort_submission(ExecutionReport report, const cluster::Cluster& cluster,
                                 double clock, bool auditing) {
  // The cluster manager drops the stage submission (network partition,
  // control-plane hiccup): nothing the configuration did, so the failure
  // is blamed on the infrastructure.
  report.failure_reason = "transient infrastructure error during stage submission";
  report.infra_fault = true;
  report.runtime = clock + 2.0;
  report.cost = cluster.cost_of(report.runtime);
  return finalize_report(std::move(report), auditing);
}

}  // namespace

SparkSimulator::SparkSimulator(cluster::Cluster cluster, EngineOptions options)
    : cluster_(std::move(cluster)), options_(options) {}

std::uint64_t SparkSimulator::context_fingerprint() const {
  std::uint64_t h = cluster_.fingerprint();
  h = simcore::hash_combine(h, options_.cost.fingerprint());
  h = simcore::hash_combine(h, options_.contention.fingerprint());
  h = simcore::hash_combine(h, options_.faults.fingerprint());
  return h;
}

ExecutionReport SparkSimulator::run(const dag::PhysicalPlan& plan,
                                    const config::Configuration& conf) const {
  if (simcore::audit_enabled()) {
    simcore::enforce_invariants(config::audit(conf), "configuration");
  }
  return run(plan, config::SparkConf(conf));
}

ExecutionReport SparkSimulator::run(const dag::PhysicalPlan& plan,
                                    const config::SparkConf& conf) const {
  // One warm scratch context per thread: callers that don't manage their
  // own TrialContext still ride the event-driven path and its caches. The
  // basis hashes inside the context keep interleaved simulators (different
  // seeds, workloads, contention) from cross-contaminating draws.
  thread_local TrialContext scratch;
  return run(plan, conf, scratch);
}

ExecutionReport SparkSimulator::run(const dag::PhysicalPlan& plan, const config::SparkConf& conf,
                                    TrialContext& ctx) const {
  const CostModel& cm = options_.cost;
  ExecutionReport report;
  const bool auditing = simcore::audit_enabled();

  Prep prep;
  if (!prepare_run(cluster_, options_, plan, conf, auditing, &prep, &report)) {
    return finalize_report(std::move(report), auditing);
  }

  ctx.arena_.reset();
  const dag::PlanTopology& topo = ctx.topology(plan);
  const simcore::Rng master(prep.master_hash);
  const simcore::FaultPlan& fplan = options_.faults;

  const std::uint64_t cont_basis =
      simcore::hash_combine(prep.master_hash, options_.contention.fingerprint());
  const std::uint64_t draw_basis =
      simcore::hash_combine(simcore::hash_combine(prep.master_hash, topo.fingerprint),
                            simcore::hash_double(cm.straggler_prob));

  Fleet fleet{prep.vms, prep.dep.executors, prep.dep.total_slots};
  double cache_hit = prep.cache_hit;
  const RunCtx rc{cluster_, options_, plan, conf, prep, auditing};

  // Scheduler state: indegree working copy, per-stage ready times and a
  // min-heap of ready stage ids, all on the arena. Stage ids are the heap
  // key: plans are topologically ordered with parent ids below child ids,
  // so popping the smallest ready id reproduces the reference path's
  // index-order walk exactly — completion-time keys would reorder the
  // contention draws and cache-hit decay and change the report.
  const std::size_t n = plan.stages.size();
  std::span<int> indeg = ctx.arena_.alloc<int>(n);
  std::copy(topo.indegree.begin(), topo.indegree.end(), indeg.begin());
  std::span<double> ready_time = ctx.arena_.alloc<double>(n);
  std::span<int> ready = ctx.arena_.alloc<int>(n);
  std::size_t ready_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready[ready_n++] = static_cast<int>(i);
  }
  std::make_heap(ready.begin(), ready.begin() + static_cast<std::ptrdiff_t>(ready_n),
                 std::greater<>{});

  double clock = cm.job_overhead;
  std::size_t processed = 0;

  auto draws_fn = [&](const dag::StagePlan& s, int tasks, double mu) {
    const StageDraws& d =
        ctx.stage_draws(draw_basis, s.id, tasks, [&](StageDraws* out) {
          out->skew.resize(static_cast<std::size_t>(tasks));
          out->straggler.resize(static_cast<std::size_t>(tasks));
          simcore::Rng srng = master.fork(static_cast<std::uint64_t>(s.id) + 1);
          for (int i = 0; i < tasks; ++i) {
            out->skew[static_cast<std::size_t>(i)] = srng.lognormal(mu, s.skew_sigma);
            out->straggler[static_cast<std::size_t>(i)] =
                srng.bernoulli(cm.straggler_prob) ? 1 : 0;
          }
          out->rng_after = srng;
        });
    return DrawView{d.skew, d.straggler, d.rng_after};
  };
  auto alloc_fn = [&](int tasks) { return ctx.arena_.alloc<double>(static_cast<std::size_t>(tasks)); };
  auto sched_fn = [&](std::span<const double> durations, int slots, int* waves) {
    return schedule_tasks_arena(durations, slots, waves, ctx.arena_);
  };

  // Stage-outcome memoization base: everything run-invariant the stage
  // body's key doesn't fold itself. Fault-free stages replay their whole
  // task loop + schedule from the context when the full key matches.
  const std::uint64_t outcome_base = simcore::hash_combine(
      simcore::hash_combine(prep.master_hash, context_fingerprint()), plan.fingerprint());
  auto lookup_fn = [&](std::uint64_t key) { return ctx.find_outcome(key); };
  auto store_fn = [&](std::uint64_t key, const StageOutcome& o) { ctx.store_outcome(key, o); };

  while (ready_n > 0) {
    std::pop_heap(ready.begin(), ready.begin() + static_cast<std::ptrdiff_t>(ready_n),
                  std::greater<>{});
    const int sid = ready[--ready_n];
    const auto& s = plan.stages[static_cast<std::size_t>(sid)];

    if (static_cast<int>(processed) == prep.abort_stage) {
      return abort_submission(std::move(report), cluster_, clock, auditing);
    }
    const cluster::ContentionSample cont = ctx.contention_sample(cont_basis, processed, [&] {
      return cluster::ContentionProcess(options_.contention, master.fork("contention"));
    });
    ++processed;

    const double start0 = std::max(clock, ready_time[static_cast<std::size_t>(sid)]);
    double finish_time = 0.0;
    if (simulate_stage(rc, s, cont, &fleet, &cache_hit, clock, start0, draws_fn, alloc_fn,
                       sched_fn, /*cache_enabled=*/true, outcome_base, lookup_fn, store_fn,
                       &report, &finish_time) == StageStatus::kFatal) {
      return finalize_report(std::move(report), auditing);
    }
    clock = std::max(clock, finish_time);

    // Completion event: release children whose last parent just finished.
    for (int e = topo.child_offsets[static_cast<std::size_t>(sid)];
         e < topo.child_offsets[static_cast<std::size_t>(sid) + 1]; ++e) {
      const int c = topo.children[static_cast<std::size_t>(e)];
      ready_time[static_cast<std::size_t>(c)] =
          std::max(ready_time[static_cast<std::size_t>(c)], finish_time);
      if (--indeg[static_cast<std::size_t>(c)] == 0) {
        ready[ready_n++] = c;
        std::push_heap(ready.begin(), ready.begin() + static_cast<std::ptrdiff_t>(ready_n),
                       std::greater<>{});
      }
    }
  }
  STUNE_CHECK_EQ(processed, n);

  return finish_run(std::move(report), cluster_, fplan, prep.chaos, clock, auditing);
}

ExecutionReport SparkSimulator::run_wave_rescan(const dag::PhysicalPlan& plan,
                                                const config::SparkConf& conf) const {
  const CostModel& cm = options_.cost;
  ExecutionReport report;
  const bool auditing = simcore::audit_enabled();

  Prep prep;
  if (!prepare_run(cluster_, options_, plan, conf, auditing, &prep, &report)) {
    return finalize_report(std::move(report), auditing);
  }

  const simcore::Rng rng(prep.master_hash);
  cluster::ContentionProcess contention(options_.contention, rng.fork("contention"));
  const simcore::FaultPlan& fplan = options_.faults;

  Fleet fleet{prep.vms, prep.dep.executors, prep.dep.total_slots};
  double cache_hit = prep.cache_hit;
  const RunCtx rc{cluster_, options_, plan, conf, prep, auditing};

  std::vector<double> stage_finish(plan.stages.size(), 0.0);
  double clock = cm.job_overhead;

  // Per-stage scratch for the live draws; owned here so the spans handed to
  // the stage body stay valid across the call.
  std::vector<double> skew_buf;
  std::vector<unsigned char> straggler_buf;
  std::vector<double> durations_buf;

  auto draws_fn = [&](const dag::StagePlan& s, int tasks, double mu) {
    skew_buf.resize(static_cast<std::size_t>(tasks));
    straggler_buf.resize(static_cast<std::size_t>(tasks));
    simcore::Rng srng = rng.fork(static_cast<std::uint64_t>(s.id) + 1);
    for (int i = 0; i < tasks; ++i) {
      skew_buf[static_cast<std::size_t>(i)] = srng.lognormal(mu, s.skew_sigma);
      straggler_buf[static_cast<std::size_t>(i)] = srng.bernoulli(cm.straggler_prob) ? 1 : 0;
    }
    return DrawView{skew_buf, straggler_buf, srng};
  };
  auto alloc_fn = [&](int tasks) {
    durations_buf.assign(static_cast<std::size_t>(tasks), 0.0);
    return std::span<double>(durations_buf);
  };
  auto sched_fn = [&](std::span<const double> durations, int slots, int* waves) {
    return schedule_tasks(durations, slots, waves);
  };
  // The golden path computes everything live — no outcome cache.
  auto lookup_fn = [](std::uint64_t) -> const StageOutcome* { return nullptr; };
  auto store_fn = [](std::uint64_t, const StageOutcome&) {};

  int stage_index = -1;
  for (const auto& s : plan.stages) {
    ++stage_index;
    if (stage_index == prep.abort_stage) {
      return abort_submission(std::move(report), cluster_, clock, auditing);
    }
    const auto cont = contention.next();

    // Stage start: rescan the finish times of every parent.
    double start0 = clock;
    for (const int p : s.parent_stages) {
      start0 = std::max(start0, stage_finish[static_cast<std::size_t>(p)]);
    }

    double finish_time = 0.0;
    if (simulate_stage(rc, s, cont, &fleet, &cache_hit, clock, start0, draws_fn, alloc_fn,
                       sched_fn, /*cache_enabled=*/false, 0, lookup_fn, store_fn, &report,
                       &finish_time) == StageStatus::kFatal) {
      return finalize_report(std::move(report), auditing);
    }
    stage_finish[static_cast<std::size_t>(s.id)] = finish_time;
    clock = std::max(clock, finish_time);
  }

  return finish_run(std::move(report), cluster_, fplan, prep.chaos, clock, auditing);
}

}  // namespace stune::disc
