// Execution metrics reported by the simulated DISC engine.
//
// These play the role of the Spark event log / REST metrics that the paper's
// tuning service harvests: per-stage timing broken down by resource, data
// volumes, spill and cache behaviour. The transfer module derives workload
// characterization vectors from this report.
#pragma once

#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace stune::disc {

using simcore::Bytes;
using simcore::Dollars;
using simcore::Seconds;

struct StageMetrics {
  int stage_id = -1;
  std::string label;
  int tasks = 0;
  int waves = 0;  // ceil(tasks / usable slots)

  Seconds start = 0.0;
  Seconds duration = 0.0;

  // Per-resource totals across all tasks of the stage (task-seconds).
  Seconds cpu_seconds = 0.0;
  Seconds gc_seconds = 0.0;
  Seconds disk_seconds = 0.0;
  Seconds net_seconds = 0.0;
  Seconds spill_seconds = 0.0;
  Seconds overhead_seconds = 0.0;

  Bytes input_bytes = 0;
  Bytes shuffle_read_bytes = 0;
  Bytes shuffle_write_bytes = 0;
  Bytes spilled_bytes = 0;
  double cache_hit_fraction = 1.0;  // for stages reading cached data
  int failed_tasks = 0;             // OOM attempts (retried)

  // -- injected-fault recovery (zero on fault-free runs) -------------------------
  int lost_executors = 0;     // executor processes that died this stage
  int lost_vms = 0;           // spot VMs revoked this stage (permanent)
  int speculative_tasks = 0;  // straggler victims bounded by speculation
  Seconds recovery_seconds = 0.0;  // task-seconds re-run to recover lost work
};

struct ExecutionReport {
  bool success = false;
  std::string failure_reason;
  /// A failed run's blame: true when the failure was injected by the
  /// environment (transient error, timeout, revoked capacity) rather than
  /// caused by the configuration. Tuners must not penalize a configuration
  /// for an infra fault; the trial pipeline retries these instead.
  bool infra_fault = false;

  Seconds runtime = 0.0;
  Dollars cost = 0.0;

  // Resolved deployment summary.
  int executors = 0;
  int total_slots = 0;
  Bytes execution_memory_per_task = 0;
  Bytes storage_memory_total = 0;
  double cache_hit_fraction = 1.0;

  std::vector<StageMetrics> stages;

  // -- aggregates over all stages ------------------------------------------------
  Seconds total_cpu = 0.0;
  Seconds total_gc = 0.0;
  Seconds total_disk = 0.0;
  Seconds total_net = 0.0;
  Seconds total_spill = 0.0;
  Seconds total_overhead = 0.0;
  Bytes total_input = 0;
  Bytes total_shuffle_read = 0;
  Bytes total_shuffle_write = 0;
  Bytes total_spilled = 0;
  int total_lost_executors = 0;
  int total_lost_vms = 0;
  int total_speculative_tasks = 0;
  Seconds total_recovery = 0.0;

  /// Sum of per-resource task-seconds (the denominator of the fraction
  /// helpers below).
  Seconds total_task_seconds() const {
    return total_cpu + total_gc + total_disk + total_net + total_spill + total_overhead;
  }
  double cpu_fraction() const { return safe_div(total_cpu, total_task_seconds()); }
  double gc_fraction() const { return safe_div(total_gc, total_task_seconds()); }
  double disk_fraction() const { return safe_div(total_disk, total_task_seconds()); }
  double net_fraction() const { return safe_div(total_net, total_task_seconds()); }
  double spill_fraction() const { return safe_div(total_spill, total_task_seconds()); }

  /// Populate the aggregate fields from `stages` (called by the engine).
  void finalize_aggregates();

  /// One-line summary for logs.
  std::string summary() const;

 private:
  static double safe_div(double a, double b) { return b > 0.0 ? a / b : 0.0; }
};

}  // namespace stune::disc
