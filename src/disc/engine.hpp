// The DISC execution engine: simulates one run of a physical plan on a
// cluster under a concrete configuration.
//
// Reproduces the architecture of paper Fig. 2: the driver turns the plan
// into per-stage task sets; tasks are list-scheduled onto executor slots;
// task durations come from an analytic cost model covering CPU,
// (de)serialization, compression, disk, network, cache hits/misses with
// lineage recomputation, spill, GC pressure, stragglers/speculation and
// OOM-retry failure semantics. Deterministic in (cluster, plan, config,
// seed).
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/contention.hpp"
#include "config/config_space.hpp"
#include "config/spark_space.hpp"
#include "dag/plan.hpp"
#include "disc/cost_model.hpp"
#include "disc/deployment.hpp"
#include "disc/metrics.hpp"
#include "simcore/fault.hpp"

namespace stune::disc {

struct EngineOptions {
  CostModel cost{};
  cluster::ContentionParams contention = cluster::ContentionParams::none();
  std::uint64_t seed = 42;
  /// Injected fault schedule for this run. Default-constructed plans are
  /// inactive: the engine takes bitwise-identical paths to a build without
  /// fault injection. Active plans can lose executors and spot VMs
  /// mid-wave, slow tasks down, or kill the trial outright — the engine
  /// recovers from the survivable ones and records the recovery work.
  simcore::FaultPlan faults{};
};

class TrialContext;

class SparkSimulator {
 public:
  explicit SparkSimulator(cluster::Cluster cluster, EngineOptions options = {});

  /// Simulate one execution. The configuration must come from
  /// config::spark_space(). Infeasible or crashing configurations return a
  /// report with success == false and the time burned before failing.
  ///
  /// Stochasticity (partition skew, stragglers, contention) is seeded from
  /// (engine seed, workload, input size) but NOT from the configuration:
  /// data skew and environment noise are properties of the data and the
  /// cluster, so two configurations with the same partitioning see the same
  /// draws and A/B comparisons isolate the configuration's effect. Use
  /// EngineOptions::seed to model run-to-run environmental variation.
  ExecutionReport run(const dag::PhysicalPlan& plan, const config::Configuration& conf) const;

  /// Lower-level entry point with a pre-parsed configuration. Runs the
  /// event-driven path against a per-thread scratch TrialContext.
  ExecutionReport run(const dag::PhysicalPlan& plan, const config::SparkConf& conf) const;

  /// Event-driven path against a caller-managed TrialContext: plan
  /// topology, contention samples and per-stage draws are reused across
  /// trials and per-trial scratch comes from the context's arena. The
  /// report is bitwise identical to run_wave_rescan() whatever the cache
  /// state — the context only amortizes work, it never changes results.
  ExecutionReport run(const dag::PhysicalPlan& plan, const config::SparkConf& conf,
                      TrialContext& ctx) const;

  /// Reference path preserving the engine's original orchestration: an
  /// index-order stage walk rescanning parent finish times, live draws and
  /// a fresh priority-queue schedule per stage. Kept as the golden
  /// implementation the event-driven path is validated against
  /// (engine_properties_test compares the two bitwise).
  ExecutionReport run_wave_rescan(const dag::PhysicalPlan& plan,
                                  const config::SparkConf& conf) const;

  const cluster::Cluster& cluster() const { return cluster_; }
  const EngineOptions& options() const { return options_; }

  /// Stable hash of everything that shapes a run besides the plan, the
  /// configuration and the seed: cluster hardware, cost-model constants and
  /// contention parameters. Two simulators with equal context fingerprints
  /// given equal (plan, config, seed) produce bitwise-identical reports, so
  /// (context, plan, seed, config) keys an execution cache safely.
  std::uint64_t context_fingerprint() const;

 private:
  cluster::Cluster cluster_;
  EngineOptions options_;
};

}  // namespace stune::disc
