// Starfish-style What-If engine (Herodotou et al., CIDR'11; paper §II-B):
// "Given the profile of a job under configuration A, what will its runtime
// be under configuration B?"
//
// The engine sees ONLY the measured profile (per-stage volumes and
// per-resource times) — not the workload's plan — and rescales each
// component by first-principles ratios implied by the configuration change
// (slot counts, partition counts, serializer/codec costs, memory regions,
// spill pressure). Deliberately approximate: profiles do not carry enough
// information to separate, e.g., serialization CPU from user CPU, which is
// precisely why the paper notes Starfish "showed less accuracy when tried
// with heterogeneous applications" — bench_whatif quantifies that error.
#pragma once

#include <string>

#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "disc/cost_model.hpp"
#include "disc/metrics.hpp"

namespace stune::disc {

struct WhatIfPrediction {
  double runtime = 0.0;
  bool feasible = true;      // target config deploys at all
  bool predicted_oom = false;
  std::string note;
};

class WhatIfEngine {
 public:
  explicit WhatIfEngine(cluster::Cluster cluster, CostModel cost = {});

  /// Predict the runtime under `target`, given `profile` measured under
  /// `profiled` on this engine's cluster. `is_sql` selects which
  /// parallelism knob governs shuffle stages.
  WhatIfPrediction predict(const ExecutionReport& profile, const config::SparkConf& profiled,
                           const config::SparkConf& target, bool is_sql = false) const;

 private:
  cluster::Cluster cluster_;
  CostModel cost_;
};

}  // namespace stune::disc
