// Spark-style event logs.
//
// Real providers harvest tuning telemetry from the framework's event log
// (one JSON object per line: job start, per-stage completion, job end).
// This module renders an ExecutionReport to that wire format and parses it
// back, so the service-side components consume the same artifact a real
// deployment would ship — and the knowledge base can persist across
// provider restarts.
#pragma once

#include <string>

#include "disc/metrics.hpp"

namespace stune::disc {

/// Render a report as a JSON-lines event log:
///   {"event":"job_start", ...}
///   {"event":"stage_completed", ...}   (one per stage)
///   {"event":"job_end", ...}
std::string to_event_log(const ExecutionReport& report);

/// Parse an event log produced by to_event_log (round-trip safe).
/// Throws std::invalid_argument on malformed input.
ExecutionReport from_event_log(const std::string& log);

}  // namespace stune::disc
