// Invariant auditors for the execution layer: executor deployments and
// engine execution reports.
//
// Deployment audit — memory-accounting conservation: the unified region
// plus Spark's fixed reserve fits the heap, the storage target fits the
// unified region, containers fit their VM, and the slot arithmetic is
// internally consistent (no core or memory oversubscription, delegated to
// cluster::audit_packing).
//
// Report audit — engine conservation laws: per-stage resource seconds are
// finite and non-negative, task counts are conserved across retries and
// OOMs (failed <= launched), spill only occurs where shuffle data was
// read, stage-level totals roll up exactly into the report aggregates, and
// simulated time is consistent (no stage finishes after the reported
// runtime).
//
// All auditors return violations instead of throwing; pass the result
// through simcore::enforce_invariants for fail-stop use. The engine does
// exactly that at stage boundaries when simcore::audit_enabled().
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "disc/deployment.hpp"
#include "disc/metrics.hpp"

namespace stune::disc {

/// Audit a resolved deployment against the configuration and cluster that
/// produced it.
std::vector<std::string> audit(const Deployment& d, const config::SparkConf& conf,
                               const cluster::Cluster& cluster);

/// Audit one completed stage's metrics (called by the engine at each stage
/// boundary). `total_slots` is the fleet-wide slot count used to check the
/// wave arithmetic. `allow_unlaunched` tolerates a zero-task stage: a run
/// aborted by an infra fault (e.g. the whole spot fleet revoked) reports
/// the stage it died in before any task launched.
std::vector<std::string> audit_stage(const StageMetrics& m, int total_slots,
                                     bool allow_unlaunched = false);

/// Audit a finalized execution report.
std::vector<std::string> audit(const ExecutionReport& report);

}  // namespace stune::disc
