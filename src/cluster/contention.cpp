#include "cluster/contention.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace stune::cluster {

namespace {

double clamp_load(double load) { return std::clamp(load, 0.0, 0.95); }

/// Load -> slowdown: a resource at weight w under load L runs at 1/(1 + wL).
double factor(double load, double weight) { return 1.0 / (1.0 + weight * load); }

}  // namespace

std::uint64_t ContentionParams::fingerprint() const {
  using simcore::hash_combine;
  using simcore::hash_double;
  std::uint64_t h = hash_double(mean_load);
  h = hash_combine(h, hash_double(volatility));
  h = hash_combine(h, hash_double(cpu_weight));
  h = hash_combine(h, hash_double(disk_weight));
  h = hash_combine(h, hash_double(net_weight));
  return h;
}

ContentionProcess::ContentionProcess(const ContentionParams& params, simcore::Rng rng)
    : params_(params), rng_(rng), load_(clamp_load(params.mean_load)) {}

ContentionSample ContentionProcess::next() {
  // AR(1) mean reversion with volatility-scaled innovations.
  const double phi = 0.8;
  const double sigma = params_.volatility * params_.mean_load;
  load_ = clamp_load(params_.mean_load + phi * (load_ - params_.mean_load) +
                     (sigma > 0.0 ? rng_.normal(0.0, sigma) : 0.0));
  return ContentionSample{
      .cpu_factor = factor(load_, params_.cpu_weight),
      .disk_factor = factor(load_, params_.disk_weight),
      .net_factor = factor(load_, params_.net_weight),
  };
}

}  // namespace stune::cluster
