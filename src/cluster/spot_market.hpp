// Spot-market model over the instance catalog.
//
// Spot capacity is the economic reason tuning services run in harm's way:
// steep discounts bought with a revocation hazard. The model is per-family
// (matching how EC2 prices interruptible capacity): a price discount and a
// relative revocation hazard. Compute-optimized capacity churns the most
// (it is the first reclaimed when on-demand demand spikes); dense-storage
// families sit in quieter pools. The hazard weight multiplies
// FaultProfile::spot_revocation_rate, so on-demand clusters (weight unused)
// and spot clusters under a zero-rate profile are both revocation-free.
#pragma once

#include <string_view>

namespace stune::cluster {

struct SpotQuote {
  /// Spot price as a fraction of on-demand (0.35 = pay 35%).
  double price_fraction = 1.0;
  /// Relative revocation hazard; 1.0 = the market's baseline churn.
  double hazard_weight = 0.0;
};

/// Quote for an instance family ("m5", "c5", ...). Unknown families get a
/// conservative default (no discount, baseline hazard) rather than an
/// error, so the catalog can grow without touching the market model.
SpotQuote spot_quote(std::string_view family);

}  // namespace stune::cluster
