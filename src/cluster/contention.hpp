// Co-location contention model.
//
// The paper argues the cloud provider is the right party to tune because it
// "witnesses ... any underlying changes in workload co-location, network
// congestion, etc.". We model co-located tenant pressure as an AR(1) load
// process in [0, 1) sampled once per stage; the load degrades effective
// CPU, disk and network rates with different weights (network suffers most
// from neighbours, CPU least, matching public noisy-neighbour studies).
#pragma once

#include <cstdint>

#include "simcore/rng.hpp"

namespace stune::cluster {

struct ContentionParams {
  double mean_load = 0.0;    // long-run co-located load, 0 = dedicated cluster
  double volatility = 0.3;   // burstiness of the load process
  double cpu_weight = 0.35;  // how strongly load degrades each resource
  double disk_weight = 0.6;
  double net_weight = 1.0;

  static ContentionParams none() { return ContentionParams{}; }
  static ContentionParams light() { return ContentionParams{.mean_load = 0.1}; }
  static ContentionParams moderate() { return ContentionParams{.mean_load = 0.25}; }
  static ContentionParams heavy() { return ContentionParams{.mean_load = 0.5}; }

  /// Stable hash over every field; part of the engine context fingerprint
  /// that keys cached execution reports.
  std::uint64_t fingerprint() const;
};

/// Multiplicative slow-down factors in (0, 1]; 1 = no interference.
struct ContentionSample {
  double cpu_factor = 1.0;
  double disk_factor = 1.0;
  double net_factor = 1.0;
};

class ContentionProcess {
 public:
  ContentionProcess(const ContentionParams& params, simcore::Rng rng);

  /// Advance the load process one step and return the resulting factors.
  ContentionSample next();

  double current_load() const { return load_; }

 private:
  ContentionParams params_;
  simcore::Rng rng_;
  double load_;
};

}  // namespace stune::cluster
