#include "cluster/audit.hpp"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

namespace stune::cluster {

namespace {

template <typename... Args>
void report(std::vector<std::string>& out, Args&&... args) {
  std::ostringstream msg;
  (msg << ... << args);
  out.push_back(msg.str());
}

}  // namespace

std::vector<std::string> audit(const Cluster& cluster) {
  std::vector<std::string> v;
  const InstanceType& t = cluster.type();
  if (cluster.vm_count() <= 0) report(v, "cluster has non-positive vm_count ", cluster.vm_count());
  if (t.vcpus <= 0) report(v, "instance type '", t.name, "' has non-positive vcpus ", t.vcpus);
  if (!(t.memory_gib > 0.0)) {
    report(v, "instance type '", t.name, "' has non-positive memory ", t.memory_gib, " GiB");
  }
  if (t.usable_memory_bytes() > t.memory_bytes()) {
    report(v, "instance type '", t.name, "' reports more usable memory than physical memory");
  }
  if (!(t.core_speed > 0.0 && std::isfinite(t.core_speed))) {
    report(v, "instance type '", t.name, "' has invalid core_speed ", t.core_speed);
  }
  if (!(t.disk_bw > 0.0)) report(v, "instance type '", t.name, "' has non-positive disk bandwidth");
  if (!(t.net_bw > 0.0)) report(v, "instance type '", t.name, "' has non-positive net bandwidth");
  if (!(t.price_per_hour > 0.0)) {
    report(v, "instance type '", t.name, "' has non-positive price ", t.price_per_hour);
  }
  return v;
}

std::vector<std::string> audit_packing(const Cluster& cluster, int executors_per_vm,
                                       int cores_per_executor, Bytes container_bytes) {
  std::vector<std::string> v;
  if (executors_per_vm <= 0) {
    report(v, "packing places ", executors_per_vm, " executors on a VM");
    return v;
  }
  if (cores_per_executor <= 0) {
    report(v, "executors have non-positive core count ", cores_per_executor);
    return v;
  }
  const InstanceType& t = cluster.type();
  const long packed_cores =
      static_cast<long>(executors_per_vm) * static_cast<long>(cores_per_executor);
  if (packed_cores > t.vcpus) {
    report(v, "core oversubscription: ", executors_per_vm, " executors x ", cores_per_executor,
           " cores = ", packed_cores, " > ", t.vcpus, " vcpus on ", t.name);
  }
  const Bytes packed_mem = static_cast<Bytes>(executors_per_vm) * container_bytes;
  if (packed_mem > cluster.usable_memory_per_vm()) {
    report(v, "memory oversubscription: ", executors_per_vm, " containers x ", container_bytes,
           " bytes = ", packed_mem, " > ", cluster.usable_memory_per_vm(),
           " usable bytes on ", t.name);
  }
  return v;
}

}  // namespace stune::cluster
