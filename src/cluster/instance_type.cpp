#include "cluster/instance_type.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stune::cluster {

namespace {

constexpr double kGbps = 1e9 / 8.0;         // gigabit/s -> bytes/s
constexpr double kMBps = 1e6;               // MB/s -> bytes/s

std::vector<InstanceType> build_catalog() {
  std::vector<InstanceType> c;
  auto add = [&c](std::string name, std::string family, int vcpus, double mem_gib,
                  double core_speed, double disk_mbps, double net_gbps, StorageKind storage,
                  double price) {
    c.push_back(InstanceType{std::move(name), std::move(family), vcpus, mem_gib, core_speed,
                             disk_mbps * kMBps, net_gbps * kGbps, storage, price});
  };

  // m5 — general purpose (1:4 vCPU:GiB), EBS storage.
  add("m5.large", "m5", 2, 8, 1.00, 80, 1.0, StorageKind::kEbs, 0.096);
  add("m5.xlarge", "m5", 4, 16, 1.00, 120, 1.25, StorageKind::kEbs, 0.192);
  add("m5.2xlarge", "m5", 8, 32, 1.00, 200, 2.5, StorageKind::kEbs, 0.384);
  add("m5.4xlarge", "m5", 16, 64, 1.00, 300, 5.0, StorageKind::kEbs, 0.768);

  // c5 — compute optimized (1:2), faster cores.
  add("c5.large", "c5", 2, 4, 1.15, 80, 1.0, StorageKind::kEbs, 0.085);
  add("c5.xlarge", "c5", 4, 8, 1.15, 120, 1.25, StorageKind::kEbs, 0.170);
  add("c5.2xlarge", "c5", 8, 16, 1.15, 200, 2.5, StorageKind::kEbs, 0.340);
  add("c5.4xlarge", "c5", 16, 32, 1.15, 300, 5.0, StorageKind::kEbs, 0.680);

  // r5 — memory optimized (1:8).
  add("r5.large", "r5", 2, 16, 1.00, 80, 1.0, StorageKind::kEbs, 0.126);
  add("r5.xlarge", "r5", 4, 32, 1.00, 120, 1.25, StorageKind::kEbs, 0.252);
  add("r5.2xlarge", "r5", 8, 64, 1.00, 200, 2.5, StorageKind::kEbs, 0.504);
  add("r5.4xlarge", "r5", 16, 128, 1.00, 300, 5.0, StorageKind::kEbs, 1.008);

  // h1 — dense HDD storage; the paper's testbed is 4x h1.4xlarge.
  add("h1.2xlarge", "h1", 8, 32, 0.95, 440, 2.5, StorageKind::kHdd, 0.467);
  add("h1.4xlarge", "h1", 16, 64, 0.95, 880, 5.0, StorageKind::kHdd, 0.934);
  add("h1.8xlarge", "h1", 32, 128, 0.95, 1760, 10.0, StorageKind::kHdd, 1.868);

  // i3 — NVMe storage.
  add("i3.xlarge", "i3", 4, 30.5, 1.00, 700, 1.25, StorageKind::kNvme, 0.312);
  add("i3.2xlarge", "i3", 8, 61, 1.00, 1400, 2.5, StorageKind::kNvme, 0.624);
  add("i3.4xlarge", "i3", 16, 122, 1.00, 2800, 5.0, StorageKind::kNvme, 1.248);

  return c;
}

}  // namespace

std::string_view to_string(StorageKind kind) {
  switch (kind) {
    case StorageKind::kEbs: return "ebs";
    case StorageKind::kHdd: return "hdd";
    case StorageKind::kNvme: return "nvme";
  }
  return "unknown";
}

Bytes InstanceType::memory_bytes() const {
  return static_cast<Bytes>(memory_gib * static_cast<double>(simcore::kGiB));
}

Bytes InstanceType::usable_memory_bytes() const {
  // YARN-style reserve: 1 GiB + 3% of RAM for OS, node manager and daemons.
  const double usable = (memory_gib - 1.0) * 0.97;
  return static_cast<Bytes>(std::max(0.0, usable) * static_cast<double>(simcore::kGiB));
}

const std::vector<InstanceType>& instance_catalog() {
  static const std::vector<InstanceType> catalog = build_catalog();
  return catalog;
}

std::vector<std::string> catalog_families() {
  std::vector<std::string> families;
  for (const auto& t : instance_catalog()) {
    if (std::find(families.begin(), families.end(), t.family) == families.end()) {
      families.push_back(t.family);
    }
  }
  return families;
}

const InstanceType& find_instance(std::string_view name) {
  for (const auto& t : instance_catalog()) {
    if (t.name == name) return t;
  }
  throw std::invalid_argument("unknown instance type: " + std::string(name));
}

std::vector<const InstanceType*> family_types(std::string_view family) {
  std::vector<const InstanceType*> out;
  for (const auto& t : instance_catalog()) {
    if (t.family == family) out.push_back(&t);
  }
  return out;
}

}  // namespace stune::cluster
