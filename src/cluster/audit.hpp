// Invariant auditor for clusters and executor packing.
//
// A cluster's catalog-derived resource figures must be physically sensible
// (positive cores, memory, bandwidth, price), and any packing of executor
// containers onto its VMs must not oversubscribe cores or memory — the
// YARN-container property resolve_deployment relies on. Returns violations
// instead of throwing; pass through simcore::enforce_invariants for
// fail-stop use.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace stune::cluster {

/// Audit a cluster's resource figures.
std::vector<std::string> audit(const Cluster& cluster);

/// Audit a proposed per-VM packing: `executors_per_vm` containers of
/// `cores_per_executor` cores and `container_bytes` memory each must fit a
/// single VM of this cluster without oversubscribing vcpus or usable
/// memory.
std::vector<std::string> audit_packing(const Cluster& cluster, int executors_per_vm,
                                       int cores_per_executor, Bytes container_bytes);

}  // namespace stune::cluster
