#include "cluster/cluster.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "simcore/rng.hpp"

namespace stune::cluster {

std::string ClusterSpec::to_string() const {
  return std::to_string(vm_count) + "x " + instance;
}

Cluster::Cluster(const InstanceType& type, int vm_count) : type_(&type), vm_count_(vm_count) {
  if (vm_count <= 0) throw std::invalid_argument("cluster needs at least one VM");
}

Cluster Cluster::from_spec(const ClusterSpec& spec) {
  return Cluster(find_instance(spec.instance), spec.vm_count);
}

Dollars Cluster::cost_per_hour() const {
  return type_->price_per_hour * static_cast<double>(vm_count_);
}

Dollars Cluster::cost_of(simcore::Seconds runtime) const {
  return cost_per_hour() * runtime / 3600.0;
}

std::uint64_t Cluster::fingerprint() const {
  return simcore::hash_combine(simcore::hash_string(type_->name),
                               static_cast<std::uint64_t>(vm_count_));
}

}  // namespace stune::cluster
