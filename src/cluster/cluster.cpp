#include "cluster/cluster.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "cluster/spot_market.hpp"
#include "simcore/rng.hpp"

namespace stune::cluster {

std::string ClusterSpec::to_string() const {
  std::string s = std::to_string(vm_count) + "x " + instance;
  if (spot) s += " (spot)";
  return s;
}

Cluster::Cluster(const InstanceType& type, int vm_count, bool spot)
    : type_(&type), vm_count_(vm_count), spot_(spot) {
  if (vm_count <= 0) throw std::invalid_argument("cluster needs at least one VM");
}

Cluster Cluster::from_spec(const ClusterSpec& spec) {
  return Cluster(find_instance(spec.instance), spec.vm_count, spec.spot);
}

double Cluster::revocation_hazard() const {
  return spot_ ? spot_quote(type_->family).hazard_weight : 0.0;
}

Dollars Cluster::cost_per_hour() const {
  const double unit = spot_ ? type_->price_per_hour * spot_quote(type_->family).price_fraction
                            : type_->price_per_hour;
  return unit * static_cast<double>(vm_count_);
}

Dollars Cluster::cost_of(simcore::Seconds runtime) const {
  return cost_per_hour() * runtime / 3600.0;
}

std::uint64_t Cluster::fingerprint() const {
  const std::uint64_t h = simcore::hash_combine(simcore::hash_string(type_->name),
                                                static_cast<std::uint64_t>(vm_count_));
  return simcore::hash_combine(h, spot_ ? 1ULL : 0ULL);
}

}  // namespace stune::cluster
