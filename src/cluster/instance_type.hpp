// Cloud instance-type catalog.
//
// The catalog models the EC2 on-demand families the configuration-tuning
// literature (CherryPick, PARIS, Ernest) searches over: general purpose
// (m5), compute optimized (c5), memory optimized (r5), dense HDD storage
// (h1 — the paper's Table I testbed uses h1.4xlarge) and NVMe storage (i3).
// Resource figures approximate the 2019 generation; what matters for
// reproduction is the *ratios* between families (CPU:memory:disk:network
// per dollar), which drive which family wins for which workload.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "simcore/units.hpp"

namespace stune::cluster {

using simcore::Bytes;
using simcore::BytesPerSecond;
using simcore::Dollars;

/// Local storage technology; drives seek/flush penalties in the engine.
enum class StorageKind {
  kEbs,   // network-attached SSD (m5/c5/r5)
  kHdd,   // dense local magnetic storage (h1)
  kNvme,  // local NVMe flash (i3)
};

std::string_view to_string(StorageKind kind);

struct InstanceType {
  std::string name;    // e.g. "h1.4xlarge"
  std::string family;  // e.g. "h1"
  int vcpus = 0;
  double memory_gib = 0.0;
  /// Relative per-core throughput (m5 == 1.0; c5 cores are faster).
  double core_speed = 1.0;
  /// Aggregate sequential disk bandwidth available to the VM.
  BytesPerSecond disk_bw = 0.0;
  /// Network bandwidth available to the VM.
  BytesPerSecond net_bw = 0.0;
  StorageKind storage = StorageKind::kEbs;
  Dollars price_per_hour = 0.0;

  Bytes memory_bytes() const;
  /// Memory usable by executors after OS / daemons reserve.
  Bytes usable_memory_bytes() const;
};

/// The full catalog, ordered by family then size.
const std::vector<InstanceType>& instance_catalog();

/// Distinct family names present in the catalog.
std::vector<std::string> catalog_families();

/// Look up a type by exact name; throws std::invalid_argument if unknown.
const InstanceType& find_instance(std::string_view name);

/// Types belonging to one family, ordered by size.
std::vector<const InstanceType*> family_types(std::string_view family);

}  // namespace stune::cluster
