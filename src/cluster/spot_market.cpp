#include "cluster/spot_market.hpp"

#include <string_view>

namespace stune::cluster {

SpotQuote spot_quote(std::string_view family) {
  // Fractions approximate 2019-era EC2 spot pricing; hazards encode the
  // folklore ordering: compute pools churn hardest, storage pools least.
  if (family == "m5") return {.price_fraction = 0.38, .hazard_weight = 1.0};
  if (family == "c5") return {.price_fraction = 0.34, .hazard_weight = 1.6};
  if (family == "r5") return {.price_fraction = 0.40, .hazard_weight = 1.2};
  if (family == "h1") return {.price_fraction = 0.45, .hazard_weight = 0.6};
  if (family == "i3") return {.price_fraction = 0.42, .hazard_weight = 0.9};
  return {.price_fraction = 1.0, .hazard_weight = 1.0};
}

}  // namespace stune::cluster
