// A virtual cluster: N identical VMs of one instance type, as provisioned by
// EMR/Dataproc-style managed DISC deployments. One VM hosts the driver
// alongside executors (as EMR master/core nodes do); we keep all VMs
// symmetric, which matches the paper's 4x h1.4xlarge testbed.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/instance_type.hpp"
#include "simcore/units.hpp"

namespace stune::cluster {

/// What a user asks a cloud for: an instance type name, a VM count, and
/// whether to buy from the spot market (discounted, revocable).
struct ClusterSpec {
  std::string instance = "m5.2xlarge";
  int vm_count = 4;
  bool spot = false;

  bool operator==(const ClusterSpec&) const = default;
  std::string to_string() const;
};

class Cluster {
 public:
  /// Throws std::invalid_argument on unknown type or non-positive count.
  Cluster(const InstanceType& type, int vm_count, bool spot = false);

  static Cluster from_spec(const ClusterSpec& spec);

  const InstanceType& type() const { return *type_; }
  int vm_count() const { return vm_count_; }
  /// Spot capacity: cheaper per cost_per_hour(), revocable mid-run when a
  /// fault plan carries a spot_revocation_rate.
  bool spot() const { return spot_; }
  /// The family's relative revocation hazard; 0 for on-demand capacity.
  double revocation_hazard() const;
  ClusterSpec spec() const { return ClusterSpec{type_->name, vm_count_, spot_}; }

  int total_vcpus() const { return type_->vcpus * vm_count_; }
  Bytes total_memory() const { return type_->memory_bytes() * static_cast<Bytes>(vm_count_); }
  Bytes usable_memory_per_vm() const { return type_->usable_memory_bytes(); }
  BytesPerSecond disk_bw_per_vm() const { return type_->disk_bw; }
  BytesPerSecond net_bw_per_vm() const { return type_->net_bw; }

  Dollars cost_per_hour() const;
  Dollars cost_of(simcore::Seconds runtime) const;

  /// Stable hash of the provisioned hardware (instance type identity plus
  /// VM count and market; the type's parameters live in the static
  /// catalog, so its name identifies them). Keys cached execution reports.
  std::uint64_t fingerprint() const;

 private:
  const InstanceType* type_;  // points into the static catalog
  int vm_count_;
  bool spot_;
};

}  // namespace stune::cluster
