#include "workload/execute.hpp"

namespace stune::workload {

disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf) {
  const config::SparkConf parsed(conf);
  const dag::PhysicalPlan plan = workload.plan(input_bytes, &parsed);
  return simulator.run(plan, parsed);
}

disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf, EvalCache& cache) {
  const config::SparkConf parsed(conf);
  const dag::PhysicalPlan plan = workload.plan(input_bytes, &parsed);
  const EvalKey key{simulator.context_fingerprint(), plan.fingerprint(),
                    simulator.options().seed, conf.values()};
  if (auto hit = cache.lookup(key)) return *std::move(hit);
  disc::ExecutionReport report = simulator.run(plan, parsed);
  cache.insert(key, report);
  return report;
}

disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf, EvalCache& cache,
                              disc::TrialContext& ctx) {
  const config::SparkConf parsed(conf);
  const dag::PhysicalPlan plan = workload.plan(input_bytes, &parsed);
  const EvalKey key{simulator.context_fingerprint(), plan.fingerprint(),
                    simulator.options().seed, conf.values()};
  if (auto hit = cache.lookup(key)) return *std::move(hit);
  disc::ExecutionReport report = simulator.run(plan, parsed, ctx);
  cache.insert(key, report);
  return report;
}

}  // namespace stune::workload
