#include "workload/execute.hpp"

namespace stune::workload {

disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf) {
  const config::SparkConf parsed(conf);
  const dag::PhysicalPlan plan = workload.plan(input_bytes, &parsed);
  return simulator.run(plan, parsed);
}

}  // namespace stune::workload
