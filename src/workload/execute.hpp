// Convenience glue: plan a workload under a configuration and run it on a
// simulator — the "one execution sample" every tuner consumes.
#pragma once

#include "config/config_space.hpp"
#include "disc/engine.hpp"
#include "workload/eval_cache.hpp"
#include "workload/workload.hpp"

namespace stune::workload {

/// Plan (config-aware, like Catalyst) and execute one run.
disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf);

/// Cached variant: replays the stored report when this exact
/// (simulator context, plan, seed, configuration) has run before;
/// otherwise runs and stores. Safe because the engine is deterministic in
/// exactly that tuple. Planning still happens on every call (the plan
/// depends on the configuration and its fingerprint is part of the key);
/// only the simulated execution is memoized.
disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf, EvalCache& cache);

}  // namespace stune::workload
