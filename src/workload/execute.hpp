// Convenience glue: plan a workload under a configuration and run it on a
// simulator — the "one execution sample" every tuner consumes.
#pragma once

#include "config/config_space.hpp"
#include "disc/engine.hpp"
#include "workload/workload.hpp"

namespace stune::workload {

/// Plan (config-aware, like Catalyst) and execute one run.
disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf);

}  // namespace stune::workload
