// Convenience glue: plan a workload under a configuration and run it on a
// simulator — the "one execution sample" every tuner consumes.
#pragma once

#include "config/config_space.hpp"
#include "disc/engine.hpp"
#include "disc/trial_context.hpp"
#include "workload/eval_cache.hpp"
#include "workload/workload.hpp"

namespace stune::workload {

/// Plan (config-aware, like Catalyst) and execute one run.
disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf);

/// Cached variant: replays the stored report when this exact
/// (simulator context, plan, seed, configuration) has run before;
/// otherwise runs and stores. Safe because the engine is deterministic in
/// exactly that tuple. Planning still happens on every call (the plan
/// depends on the configuration and its fingerprint is part of the key);
/// only the simulated execution is memoized.
disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf, EvalCache& cache);

/// Cached variant whose miss path runs against a caller-managed
/// TrialContext (typically one leased from a disc::TrialContextPool by a
/// trial worker): plan topology, contention samples and per-stage draws
/// amortize across the batch. The cache key is untouched — a context never
/// changes what a run computes, only what it re-computes.
disc::ExecutionReport execute(const Workload& workload, Bytes input_bytes,
                              const disc::SparkSimulator& simulator,
                              const config::Configuration& conf, EvalCache& cache,
                              disc::TrialContext& ctx);

}  // namespace stune::workload
