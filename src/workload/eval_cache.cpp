#include "workload/eval_cache.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>

#include "simcore/mutex.hpp"
#include "simcore/rng.hpp"

namespace stune::workload {

namespace {

std::uint64_t key_fingerprint(const EvalKey& key) {
  using simcore::hash_combine;
  std::uint64_t h = hash_combine(key.context, key.plan);
  h = hash_combine(h, key.seed);
  for (const double v : key.config) h = hash_combine(h, simcore::hash_double(v));
  return h;
}

}  // namespace

std::size_t EvalCache::KeyHash::operator()(const EvalKey& key) const {
  return static_cast<std::size_t>(key_fingerprint(key));
}

EvalCache::Shard& EvalCache::shard_of(const EvalKey& key) {
  // Use high bits for the shard so the map's bucket choice (low bits)
  // stays independent of it.
  return shards_[(key_fingerprint(key) >> 60) % kShards];
}

std::optional<disc::ExecutionReport> EvalCache::lookup(const EvalKey& key) {
  Shard& shard = shard_of(key);
  const simcore::MutexLock lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void EvalCache::insert(const EvalKey& key, const disc::ExecutionReport& report) {
  Shard& shard = shard_of(key);
  const simcore::MutexLock lock(shard.mu);
  shard.map.emplace(key, report);
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    const simcore::MutexLock lock(shard.mu);
    s.entries += shard.map.size();
  }
  return s;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    const simcore::MutexLock lock(shard.mu);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace stune::workload
