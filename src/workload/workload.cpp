#include "workload/workload.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stune::workload {

using dag::ActionKind;
using dag::LogicalPlan;
using dag::TransformKind;

dag::PhysicalPlan Workload::plan(Bytes input_bytes, const config::SparkConf* conf) const {
  return dag::build_physical_plan(logical(conf), input_bytes);
}

// -- WordCount ------------------------------------------------------------------

dag::LogicalPlan WordCount::logical(const config::SparkConf*) const {
  LogicalPlan p("wordcount");
  const int src = p.source("lines", 1.0, 1.0, 120.0);
  const int words = p.narrow(TransformKind::kFlatMap, "words", src, 1.0, 8.0);
  const int pairs = p.narrow(TransformKind::kMap, "pairs", words, 1.05, 1.5);
  // Strong map-side combine: only distinct words cross the wire.
  p.wide(TransformKind::kReduceByKey, "counts", {pairs}, 0.02, 2.0,
         /*map_side_factor=*/0.04, /*agg_memory_factor=*/0.25);
  p.action(ActionKind::kSave);
  return p;
}

// -- Sort ------------------------------------------------------------------------

dag::LogicalPlan Sort::logical(const config::SparkConf*) const {
  LogicalPlan p("sort");
  const int src = p.source("records", 1.0, 0.8, 100.0);
  p.wide(TransformKind::kSortByKey, "sorted", {src}, 1.0, 1.2,
         /*map_side_factor=*/1.0, /*agg_memory_factor=*/0.9);
  p.action(ActionKind::kSave);
  return p;
}

// -- TeraSort -----------------------------------------------------------------------

dag::LogicalPlan TeraSort::logical(const config::SparkConf*) const {
  LogicalPlan p("terasort");
  const int src = p.source("tera-records", 1.0, 0.6, 100.0);
  // Range-partitioner sampling pass folded into a cheap narrow map.
  const int keyed = p.narrow(TransformKind::kMap, "keyed", src, 1.0, 0.6);
  p.mutable_node(keyed).skew_sigma = 0.12;  // synthetic keys: low skew
  p.wide(TransformKind::kSortByKey, "sorted", {keyed}, 1.0, 1.0,
         /*map_side_factor=*/1.0, /*agg_memory_factor=*/0.9);
  p.action(ActionKind::kSave);
  return p;
}

// -- PageRank ------------------------------------------------------------------------

dag::LogicalPlan PageRank::logical(const config::SparkConf*) const {
  LogicalPlan p("pagerank");
  const int src = p.source("edges", 1.0, 1.2, 24.0);
  const int pairs = p.narrow(TransformKind::kMap, "edge-pairs", src, 0.9, 2.0);
  const int links = p.wide(TransformKind::kGroupByKey, "links", {pairs}, 0.75, 2.5,
                           /*map_side_factor=*/1.0, /*agg_memory_factor=*/1.0);
  p.cache(links);
  int ranks = p.narrow(TransformKind::kMapPartitions, "ranks0", links, 0.06, 0.5);
  for (int i = 1; i <= iterations_; ++i) {
    const std::string tag = std::to_string(i);
    const int contribs =
        p.wide(TransformKind::kJoin, "contribs" + tag, {links, ranks}, 0.5, 3.0,
               /*map_side_factor=*/1.0, /*agg_memory_factor=*/0.7);
    ranks = p.wide(TransformKind::kReduceByKey, "ranks" + tag, {contribs}, 0.12, 2.0,
                   /*map_side_factor=*/0.35, /*agg_memory_factor=*/0.2);
  }
  p.action(ActionKind::kSave);
  return p;
}

// -- BayesClassifier ----------------------------------------------------------------------

dag::LogicalPlan BayesClassifier::logical(const config::SparkConf*) const {
  LogicalPlan p("bayes");
  const int src = p.source("docs", 1.0, 1.5, 500.0);
  const int tokens = p.narrow(TransformKind::kFlatMap, "tokens", src, 1.1, 7.0);
  const int tf = p.wide(TransformKind::kReduceByKey, "tf", {tokens}, 0.35, 2.5,
                        /*map_side_factor=*/0.3, /*agg_memory_factor=*/0.35);
  p.cache(tf);
  const int df = p.wide(TransformKind::kReduceByKey, "df", {tf}, 0.08, 2.0,
                        /*map_side_factor=*/0.4, /*agg_memory_factor=*/0.3);
  const int tfidf = p.wide(TransformKind::kJoin, "tfidf", {tf, df}, 0.8, 2.5,
                           /*map_side_factor=*/0.8, /*agg_memory_factor=*/0.5);
  p.wide(TransformKind::kReduceByKey, "model", {tfidf}, 0.02, 3.0,
         /*map_side_factor=*/0.25, /*agg_memory_factor=*/0.3);
  p.action(ActionKind::kCollect, 1.0);
  return p;
}

// -- KMeans ---------------------------------------------------------------------------------

dag::LogicalPlan KMeans::logical(const config::SparkConf*) const {
  LogicalPlan p("kmeans");
  const int src = p.source("points", 1.0, 1.0, 80.0);
  const int points = p.narrow(TransformKind::kMap, "points", src, 1.0, 2.0);
  p.cache(points);
  int last = points;
  for (int i = 1; i <= iterations_; ++i) {
    const std::string tag = std::to_string(i);
    const int sums = p.narrow(TransformKind::kMap, "partial-sums" + tag, points, 0.003, 14.0);
    last = p.wide(TransformKind::kReduceByKey, "centroids" + tag, {sums}, 1.0, 1.0,
                  /*map_side_factor=*/1.0, /*agg_memory_factor=*/0.1);
  }
  (void)last;
  p.action(ActionKind::kCollect, 1.0);
  return p;
}

// -- Scan -----------------------------------------------------------------------------------

dag::LogicalPlan Scan::logical(const config::SparkConf*) const {
  LogicalPlan p("scan");
  const int src = p.source("records", 1.0, 0.8, 250.0);
  p.narrow(TransformKind::kFilter, "matches", src, 0.01, 6.0);
  p.action(ActionKind::kSave);
  return p;
}

// -- SqlAggregation ---------------------------------------------------------------------------

dag::LogicalPlan SqlAggregation::logical(const config::SparkConf*) const {
  LogicalPlan p("aggregation", /*is_sql=*/true);
  const int src = p.source("lineitems", 1.0, 1.2, 180.0);
  const int projected = p.narrow(TransformKind::kMap, "projected", src, 0.45, 3.0);
  p.wide(TransformKind::kReduceByKey, "rollup", {projected}, 0.02, 2.0,
         /*map_side_factor=*/0.12, /*agg_memory_factor=*/0.3);
  p.action(ActionKind::kCollect, 1.0);
  return p;
}

// -- SqlJoin ------------------------------------------------------------------------------------

dag::LogicalPlan SqlJoin::logical(const config::SparkConf* conf) const {
  LogicalPlan p("join", /*is_sql=*/true);
  const int fact = p.source("fact", 1.0 - kDimShare, 1.0, 200.0);
  const int dim = p.source("dim", kDimShare, 1.0, 150.0);
  const int filtered = p.narrow(TransformKind::kFilter, "filtered", fact, 0.6, 2.0);

  // Catalyst-style physical choice: broadcast the dimension table when it
  // fits under the configured threshold, else shuffle both sides.
  const double threshold_mib = conf ? conf->auto_broadcast_join_threshold_mib : 10.0;
  const bool use_broadcast = threshold_mib > 0.0;  // resolved against size below
  int joined;
  // Note: the planner does not know absolute sizes (the logical plan is
  // size-independent); it encodes the *rule*, and the physical planner
  // applies it via the dim source share. We approximate Catalyst by
  // comparing the threshold with the dimension share of a nominal 4 GiB
  // input — the smallest evolving size — so the decision is config-driven.
  const double nominal_dim_mib =
      static_cast<double>(EvolvingSizes::kDS1) * kDimShare / (1024.0 * 1024.0);
  if (use_broadcast && threshold_mib >= nominal_dim_mib) {
    joined = p.add([&] {
      dag::RddNode n;
      n.name = "bjoin";
      n.kind = TransformKind::kBroadcastJoin;
      n.parents = {filtered, dim};
      n.selectivity = 0.9;
      n.cpu_per_gib = 3.0;
      n.record_size = 200.0;
      return n;
    }());
  } else {
    joined = p.wide(TransformKind::kJoin, "sjoin", {filtered, dim}, 0.9, 3.0,
                    /*map_side_factor=*/1.0, /*agg_memory_factor=*/0.6);
  }
  p.wide(TransformKind::kReduceByKey, "agg", {joined}, 0.01, 2.5,
         /*map_side_factor=*/0.15, /*agg_memory_factor=*/0.25);
  p.action(ActionKind::kCollect, 1.0);
  return p;
}

// -- registry -------------------------------------------------------------------------------------

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {"wordcount", "sort",   "terasort",
                                                 "pagerank",  "bayes",  "kmeans",
                                                 "join",      "scan",   "aggregation"};
  return names;
}

std::unique_ptr<Workload> make_workload(std::string_view name) {
  if (name == "wordcount") return std::make_unique<WordCount>();
  if (name == "sort") return std::make_unique<Sort>();
  if (name == "terasort") return std::make_unique<TeraSort>();
  if (name == "pagerank") return std::make_unique<PageRank>();
  if (name == "bayes") return std::make_unique<BayesClassifier>();
  if (name == "kmeans") return std::make_unique<KMeans>();
  if (name == "join") return std::make_unique<SqlJoin>();
  if (name == "scan") return std::make_unique<Scan>();
  if (name == "aggregation") return std::make_unique<SqlAggregation>();
  throw std::invalid_argument("unknown workload: " + std::string(name));
}

std::vector<Bytes> evolving_sizes() {
  return {EvolvingSizes::kDS1, EvolvingSizes::kDS2, EvolvingSizes::kDS3};
}

}  // namespace stune::workload
