// The analytics workload suite.
//
// Models the HiBench workloads the paper's Table I experiment uses
// (Pagerank, Bayes classifier, Wordcount) plus the rest of a representative
// suite (Sort, TeraSort, KMeans, SQL Join). Each workload builds a logical
// RDD lineage whose cost annotations — selectivities, shuffle combine
// factors, cache reuse, iteration structure — give it the characteristic
// resource profile of its real counterpart; sizing to a concrete input is
// done by the physical planner.
//
// Like Spark's Catalyst, planning may consult the active configuration
// (e.g. the SQL join picks broadcast vs. shuffle join from
// spark.sql.autoBroadcastJoinThreshold).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "config/spark_space.hpp"
#include "dag/plan.hpp"
#include "dag/rdd.hpp"
#include "simcore/units.hpp"

namespace stune::workload {

using simcore::Bytes;

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  /// Build the lineage. `conf` may be null (plan with defaults); only
  /// config-sensitive planners (SQL) look at it.
  virtual dag::LogicalPlan logical(const config::SparkConf* conf) const = 0;

  /// Logical plan -> sized physical plan for a concrete input.
  dag::PhysicalPlan plan(Bytes input_bytes, const config::SparkConf* conf = nullptr) const;
};

// -- concrete workloads --------------------------------------------------------

/// CPU-bound scan with strong map-side combining: negligible shuffle, no
/// caching — the workload Table I shows gains ~nothing from re-tuning.
class WordCount final : public Workload {
 public:
  std::string name() const override { return "wordcount"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
};

/// Full-data shuffle (range partition + sort); IO and network bound.
class Sort final : public Workload {
 public:
  std::string name() const override { return "sort"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
};

/// Sort over fixed 100-byte records with a sampling pass, TeraSort-style.
class TeraSort final : public Workload {
 public:
  std::string name() const override { return "terasort"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
};

/// Iterative graph computation: adjacency lists cached and re-shuffled into
/// a join every iteration — cache- and shuffle-heavy, the workload with the
/// largest re-tuning savings in Table I.
class PageRank final : public Workload {
 public:
  explicit PageRank(int iterations = 5) : iterations_(iterations) {}
  std::string name() const override { return "pagerank"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
  int iterations() const { return iterations_; }

 private:
  int iterations_;
};

/// Naive Bayes training: tokenize, cache TF vectors, re-read them for the
/// DF pass and the model aggregation — moderate cache and shuffle.
class BayesClassifier final : public Workload {
 public:
  std::string name() const override { return "bayes"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
};

/// Lloyd iterations over cached points: compute heavy, tiny shuffles.
class KMeans final : public Workload {
 public:
  explicit KMeans(int iterations = 4) : iterations_(iterations) {}
  std::string name() const override { return "kmeans"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
  int iterations() const { return iterations_; }

 private:
  int iterations_;
};

/// Grep-style scan: read everything, keep almost nothing. Pure source
/// bandwidth + predicate CPU; the minimal single-stage job.
class Scan final : public Workload {
 public:
  std::string name() const override { return "scan"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
};

/// SQL rollup (TPC-H Q1-style): project then group-by over few keys —
/// exercises spark.sql.shuffle.partitions with strong combining.
class SqlAggregation final : public Workload {
 public:
  std::string name() const override { return "aggregation"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;
};

/// SQL star join + aggregation; planner consults the broadcast threshold.
class SqlJoin final : public Workload {
 public:
  std::string name() const override { return "join"; }
  dag::LogicalPlan logical(const config::SparkConf* conf) const override;

  /// Dimension table size as a fraction of the workload input.
  static constexpr double kDimShare = 0.02;
};

// -- registry & datasets -----------------------------------------------------------

/// Names accepted by make_workload, in suite order.
const std::vector<std::string>& workload_names();

/// Factory; throws std::invalid_argument for unknown names.
std::unique_ptr<Workload> make_workload(std::string_view name);

/// The paper's evolving input sizes DS1 < DS2 < DS3 (§IV-B).
struct EvolvingSizes {
  static constexpr Bytes kDS1 = 4ULL << 30;
  static constexpr Bytes kDS2 = 16ULL << 30;
  static constexpr Bytes kDS3 = 64ULL << 30;
};
std::vector<Bytes> evolving_sizes();

}  // namespace stune::workload
