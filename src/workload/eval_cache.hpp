// A sharded, thread-safe memo of simulated executions.
//
// The engine is a pure function of (cluster+cost-model+contention context,
// physical plan, configuration, seed) — see SparkSimulator's determinism
// contract — so a report computed once can be replayed for any later
// request with the same key. That is what makes re-tuning cheap for a
// provider-side service: a grid re-tune over a workload it has already
// profiled mostly replays stored reports.
//
// Keys compare the full canonical configuration vector (not a hash of it),
// so a hit can never alias two distinct configurations; fingerprints only
// pick the shard and bucket. Sharding keeps concurrent TrialExecutor
// batches from serializing on one mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "disc/metrics.hpp"
#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"

namespace stune::workload {

/// Everything a simulated execution depends on, canonically.
struct EvalKey {
  std::uint64_t context = 0;  // SparkSimulator::context_fingerprint()
  std::uint64_t plan = 0;     // dag::PhysicalPlan::fingerprint()
  std::uint64_t seed = 0;     // EngineOptions::seed
  std::vector<double> config;  // sanitized stored values, full precision

  bool operator==(const EvalKey&) const = default;
};

struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class EvalCache {
 public:
  EvalCache() = default;
  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Returns the stored report, or nullopt (counting a miss).
  std::optional<disc::ExecutionReport> lookup(const EvalKey& key);

  /// Stores a report; the first insert for a key wins (reports for equal
  /// keys are identical by the determinism contract, so losing a race to
  /// another thread changes nothing).
  void insert(const EvalKey& key, const disc::ExecutionReport& report);

  EvalCacheStats stats() const;
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const EvalKey& key) const;
  };
  struct Shard {
    // Leaf rank: shard locks are taken last (often with the service and
    // executor mutexes held via the tuning objective) and never nest.
    mutable simcore::Mutex mu{simcore::lock_rank::kEvalCacheShard};
    std::unordered_map<EvalKey, disc::ExecutionReport, KeyHash> map STUNE_GUARDED_BY(mu);
  };

  Shard& shard_of(const EvalKey& key);

  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  // Atomic rather than guarded: counters are bumped on the lookup fast path
  // of every shard, and exactness only needs each increment to be
  // indivisible, not ordered against the shard maps. stats() still reports
  // exact totals once concurrent lookups have completed (asserted by
  // eval_cache_test).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace stune::workload
