#include "adaptive/change_detector.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stune::adaptive {

namespace {
/// Runtimes within a few percent of the baseline are operationally "the
/// same"; flooring sigma at this fraction of the mean keeps tiny-variance
/// warmups from inflating z-scores into false alarms.
constexpr double kSigmaFloorFraction = 0.05;
}  // namespace

// -- FixedThresholdDetector -----------------------------------------------------

FixedThresholdDetector::FixedThresholdDetector(double threshold_fraction, std::size_t warmup)
    : threshold_(threshold_fraction), warmup_(warmup) {
  if (threshold_fraction <= 0.0) throw std::invalid_argument("threshold must be positive");
  if (warmup == 0) throw std::invalid_argument("warmup must be positive");
}

bool FixedThresholdDetector::add(double runtime) {
  if (baseline_.count() < warmup_) {
    baseline_.add(runtime);
    return false;
  }
  if (runtime > baseline_.mean() * (1.0 + threshold_)) triggered_ = true;
  return triggered_;
}

void FixedThresholdDetector::reset() {
  baseline_.reset();
  triggered_ = false;
}

// -- CusumDetector -----------------------------------------------------------------

CusumDetector::CusumDetector(double k, double h, std::size_t warmup, double z_cap)
    : k_(k), h_(h), warmup_(warmup), z_cap_(z_cap) {
  if (h <= 0.0) throw std::invalid_argument("cusum: h must be positive");
  if (warmup < 2) throw std::invalid_argument("cusum: warmup must be >= 2");
}

bool CusumDetector::add(double runtime) {
  if (baseline_.count() < warmup_) {
    baseline_.add(runtime);
    return false;
  }
  const double sigma = std::max(baseline_.stddev(), 1e-9 + kSigmaFloorFraction * baseline_.mean());
  const double z = std::min((runtime - baseline_.mean()) / sigma, z_cap_);
  s_ = std::max(0.0, s_ + z - k_);
  if (s_ > h_) triggered_ = true;
  return triggered_;
}

void CusumDetector::reset() {
  baseline_.reset();
  s_ = 0.0;
  triggered_ = false;
}

// -- PageHinkleyDetector ----------------------------------------------------------------

PageHinkleyDetector::PageHinkleyDetector(double delta, double lambda, std::size_t warmup,
                                         double z_cap)
    : delta_(delta), lambda_(lambda), warmup_(warmup), z_cap_(z_cap) {
  if (lambda <= 0.0) throw std::invalid_argument("page-hinkley: lambda must be positive");
  if (warmup < 2) throw std::invalid_argument("page-hinkley: warmup must be >= 2");
}

bool PageHinkleyDetector::add(double runtime) {
  if (baseline_.count() < warmup_) {
    baseline_.add(runtime);
    return false;
  }
  const double sigma = std::max(baseline_.stddev(), 1e-9 + kSigmaFloorFraction * baseline_.mean());
  const double z = std::min((runtime - baseline_.mean()) / sigma, z_cap_);
  ++n_;
  cumulative_ += z - delta_;
  min_cumulative_ = std::min(min_cumulative_, cumulative_);
  if (cumulative_ - min_cumulative_ > lambda_) triggered_ = true;
  return triggered_;
}

void PageHinkleyDetector::reset() {
  baseline_.reset();
  cumulative_ = 0.0;
  min_cumulative_ = 0.0;
  n_ = 0;
  triggered_ = false;
}

// -- registry ----------------------------------------------------------------------------

std::unique_ptr<ChangeDetector> make_detector(std::string_view name) {
  if (name == "fixed-threshold") return std::make_unique<FixedThresholdDetector>();
  if (name == "cusum") return std::make_unique<CusumDetector>();
  if (name == "page-hinkley") return std::make_unique<PageHinkleyDetector>();
  throw std::invalid_argument("unknown detector: " + std::string(name));
}

std::vector<std::string> detector_names() {
  return {"fixed-threshold", "cusum", "page-hinkley"};
}

}  // namespace stune::adaptive
