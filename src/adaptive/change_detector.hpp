// Detecting the need for re-tuning (paper §V-D).
//
// The tuning service watches the runtime stream of a recurring workload and
// must distinguish marginal fluctuation from a real change in workload or
// environment characteristics. The paper criticizes fixed percentual
// thresholds ("likely to lead to it being done either too frequently or too
// late"); we implement that baseline plus two sequential change detectors
// whose sensitivity adapts to the stream's own variance.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/stats.hpp"

namespace stune::adaptive {

class ChangeDetector {
 public:
  virtual ~ChangeDetector() = default;
  virtual std::string name() const = 0;
  /// Feed one runtime observation; returns true if a change is signalled
  /// (the detector stays triggered until reset()).
  virtual bool add(double runtime) = 0;
  virtual bool triggered() const = 0;
  /// Re-arm after re-tuning re-establishes a baseline.
  virtual void reset() = 0;
};

/// The naive baseline: trigger when a run exceeds the baseline mean (first
/// `warmup` runs) by more than `threshold_fraction`.
class FixedThresholdDetector final : public ChangeDetector {
 public:
  explicit FixedThresholdDetector(double threshold_fraction = 0.2, std::size_t warmup = 5);
  std::string name() const override { return "fixed-threshold"; }
  bool add(double runtime) override;
  bool triggered() const override { return triggered_; }
  void reset() override;

 private:
  double threshold_;
  std::size_t warmup_;
  simcore::RunningStats baseline_;
  bool triggered_ = false;
};

/// One-sided standardized CUSUM: s = max(0, s + min(z, z_cap) - k), trigger
/// at s > h. Adapts to the stream's own mean/variance estimated during
/// warmup; z-scores are winsorized so one freak run cannot fire the
/// detector — the sustained-vs-transient distinction §V-D calls for.
class CusumDetector final : public ChangeDetector {
 public:
  explicit CusumDetector(double k = 0.5, double h = 6.0, std::size_t warmup = 5,
                         double z_cap = 4.0);
  std::string name() const override { return "cusum"; }
  bool add(double runtime) override;
  bool triggered() const override { return triggered_; }
  void reset() override;
  double statistic() const { return s_; }

 private:
  double k_;
  double h_;
  std::size_t warmup_;
  double z_cap_;
  simcore::RunningStats baseline_;
  double s_ = 0.0;
  bool triggered_ = false;
};

/// Page-Hinkley test for upward mean shift on winsorized z-scores.
class PageHinkleyDetector final : public ChangeDetector {
 public:
  /// delta must absorb the baseline-mean estimation bias of a short warmup
  /// (the cumulative statistic drifts at E[z] - delta per run).
  explicit PageHinkleyDetector(double delta = 0.5, double lambda = 10.0,
                               std::size_t warmup = 5, double z_cap = 4.0);
  std::string name() const override { return "page-hinkley"; }
  bool add(double runtime) override;
  bool triggered() const override { return triggered_; }
  void reset() override;

 private:
  double delta_;
  double lambda_;
  std::size_t warmup_;
  double z_cap_;
  simcore::RunningStats baseline_;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
  std::size_t n_ = 0;
  bool triggered_ = false;
};

std::unique_ptr<ChangeDetector> make_detector(std::string_view name);
std::vector<std::string> detector_names();

}  // namespace stune::adaptive
