// Re-tuning controller: wraps a change detector with the operational rules
// a tuning service needs — a cooldown after re-tuning (a fresh baseline
// must form before the detector is trusted again) and a record of decisions
// for auditability.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/change_detector.hpp"

namespace stune::adaptive {

class RetuningController {
 public:
  struct Options {
    /// Executions to ignore right after a re-tune (baseline rebuild).
    std::size_t cooldown = 3;
  };

  RetuningController(std::unique_ptr<ChangeDetector> detector, Options options);
  explicit RetuningController(std::unique_ptr<ChangeDetector> detector)
      : RetuningController(std::move(detector), Options{}) {}

  /// Feed one runtime; returns true when a re-tune should be launched now.
  bool observe(double runtime);

  /// Tell the controller the workload was re-tuned (resets the detector and
  /// starts the cooldown).
  void notify_retuned();

  std::size_t retunes_signalled() const { return signals_; }
  std::size_t observations() const { return observations_; }
  const ChangeDetector& detector() const { return *detector_; }

 private:
  std::unique_ptr<ChangeDetector> detector_;
  Options options_;
  std::size_t cooldown_left_ = 0;
  std::size_t signals_ = 0;
  std::size_t observations_ = 0;
};

}  // namespace stune::adaptive
