#include "adaptive/retuning_policy.hpp"

#include <memory>
#include <stdexcept>

namespace stune::adaptive {

RetuningController::RetuningController(std::unique_ptr<ChangeDetector> detector, Options options)
    : detector_(std::move(detector)), options_(options) {
  if (detector_ == nullptr) throw std::invalid_argument("RetuningController: null detector");
}

bool RetuningController::observe(double runtime) {
  ++observations_;
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    // Cooldown samples still feed the fresh baseline.
    detector_->add(runtime);
    return false;
  }
  if (detector_->add(runtime)) {
    ++signals_;
    return true;
  }
  return false;
}

void RetuningController::notify_retuned() {
  detector_->reset();
  cooldown_left_ = options_.cooldown;
}

}  // namespace stune::adaptive
