# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/spark_space_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_properties_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/model_linear_test[1]_include.cmake")
include("/root/repo/build/tests/model_tree_test[1]_include.cmake")
include("/root/repo/build/tests/model_gp_test[1]_include.cmake")
include("/root/repo/build/tests/kmedoids_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_test[1]_include.cmake")
include("/root/repo/build/tests/eventlog_test[1]_include.cmake")
include("/root/repo/build/tests/tradeoff_test[1]_include.cmake")
include("/root/repo/build/tests/aroma_test[1]_include.cmake")
include("/root/repo/build/tests/additive_gp_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_strategy_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
