# Empty dependencies file for additive_gp_test.
# This may be replaced when dependencies are built.
