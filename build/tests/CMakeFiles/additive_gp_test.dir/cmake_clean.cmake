file(REMOVE_RECURSE
  "CMakeFiles/additive_gp_test.dir/additive_gp_test.cpp.o"
  "CMakeFiles/additive_gp_test.dir/additive_gp_test.cpp.o.d"
  "additive_gp_test"
  "additive_gp_test.pdb"
  "additive_gp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/additive_gp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
