file(REMOVE_RECURSE
  "CMakeFiles/model_tree_test.dir/model_tree_test.cpp.o"
  "CMakeFiles/model_tree_test.dir/model_tree_test.cpp.o.d"
  "model_tree_test"
  "model_tree_test.pdb"
  "model_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
