# Empty dependencies file for model_linear_test.
# This may be replaced when dependencies are built.
