file(REMOVE_RECURSE
  "CMakeFiles/model_linear_test.dir/model_linear_test.cpp.o"
  "CMakeFiles/model_linear_test.dir/model_linear_test.cpp.o.d"
  "model_linear_test"
  "model_linear_test.pdb"
  "model_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
