file(REMOVE_RECURSE
  "CMakeFiles/model_gp_test.dir/model_gp_test.cpp.o"
  "CMakeFiles/model_gp_test.dir/model_gp_test.cpp.o.d"
  "model_gp_test"
  "model_gp_test.pdb"
  "model_gp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_gp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
