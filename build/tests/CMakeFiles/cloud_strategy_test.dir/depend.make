# Empty dependencies file for cloud_strategy_test.
# This may be replaced when dependencies are built.
