file(REMOVE_RECURSE
  "CMakeFiles/cloud_strategy_test.dir/cloud_strategy_test.cpp.o"
  "CMakeFiles/cloud_strategy_test.dir/cloud_strategy_test.cpp.o.d"
  "cloud_strategy_test"
  "cloud_strategy_test.pdb"
  "cloud_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
