
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/stune_service.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/stune_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/stune_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/stune_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/stune_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/disc/CMakeFiles/stune_disc.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/stune_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/stune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/stune_config.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/stune_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/stune_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/stune_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
