# Empty dependencies file for aroma_test.
# This may be replaced when dependencies are built.
