file(REMOVE_RECURSE
  "CMakeFiles/spark_space_test.dir/spark_space_test.cpp.o"
  "CMakeFiles/spark_space_test.dir/spark_space_test.cpp.o.d"
  "spark_space_test"
  "spark_space_test.pdb"
  "spark_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spark_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
