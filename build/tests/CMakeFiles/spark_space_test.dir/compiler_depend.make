# Empty compiler generated dependencies file for spark_space_test.
# This may be replaced when dependencies are built.
