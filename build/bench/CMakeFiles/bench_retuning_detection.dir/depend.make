# Empty dependencies file for bench_retuning_detection.
# This may be replaced when dependencies are built.
