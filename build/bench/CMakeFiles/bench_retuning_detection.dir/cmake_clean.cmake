file(REMOVE_RECURSE
  "CMakeFiles/bench_retuning_detection.dir/bench_retuning_detection.cpp.o"
  "CMakeFiles/bench_retuning_detection.dir/bench_retuning_detection.cpp.o.d"
  "bench_retuning_detection"
  "bench_retuning_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retuning_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
