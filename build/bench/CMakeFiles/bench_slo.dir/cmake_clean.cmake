file(REMOVE_RECURSE
  "CMakeFiles/bench_slo.dir/bench_slo.cpp.o"
  "CMakeFiles/bench_slo.dir/bench_slo.cpp.o.d"
  "bench_slo"
  "bench_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
