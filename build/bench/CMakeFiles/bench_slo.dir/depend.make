# Empty dependencies file for bench_slo.
# This may be replaced when dependencies are built.
