file(REMOVE_RECURSE
  "CMakeFiles/bench_interpretability.dir/bench_interpretability.cpp.o"
  "CMakeFiles/bench_interpretability.dir/bench_interpretability.cpp.o.d"
  "bench_interpretability"
  "bench_interpretability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interpretability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
