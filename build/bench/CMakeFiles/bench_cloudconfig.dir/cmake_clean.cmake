file(REMOVE_RECURSE
  "CMakeFiles/bench_cloudconfig.dir/bench_cloudconfig.cpp.o"
  "CMakeFiles/bench_cloudconfig.dir/bench_cloudconfig.cpp.o.d"
  "bench_cloudconfig"
  "bench_cloudconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cloudconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
