# Empty dependencies file for bench_cloudconfig.
# This may be replaced when dependencies are built.
