# Empty dependencies file for bench_whatif.
# This may be replaced when dependencies are built.
