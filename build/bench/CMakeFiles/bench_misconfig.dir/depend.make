# Empty dependencies file for bench_misconfig.
# This may be replaced when dependencies are built.
