file(REMOVE_RECURSE
  "CMakeFiles/bench_misconfig.dir/bench_misconfig.cpp.o"
  "CMakeFiles/bench_misconfig.dir/bench_misconfig.cpp.o.d"
  "bench_misconfig"
  "bench_misconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
