# Empty dependencies file for bench_tuner_comparison.
# This may be replaced when dependencies are built.
