file(REMOVE_RECURSE
  "CMakeFiles/bench_tuner_comparison.dir/bench_tuner_comparison.cpp.o"
  "CMakeFiles/bench_tuner_comparison.dir/bench_tuner_comparison.cpp.o.d"
  "bench_tuner_comparison"
  "bench_tuner_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuner_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
