# Empty dependencies file for stune_dag.
# This may be replaced when dependencies are built.
