file(REMOVE_RECURSE
  "CMakeFiles/stune_dag.dir/plan.cpp.o"
  "CMakeFiles/stune_dag.dir/plan.cpp.o.d"
  "CMakeFiles/stune_dag.dir/rdd.cpp.o"
  "CMakeFiles/stune_dag.dir/rdd.cpp.o.d"
  "libstune_dag.a"
  "libstune_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
