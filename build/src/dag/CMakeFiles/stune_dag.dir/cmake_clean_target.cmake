file(REMOVE_RECURSE
  "libstune_dag.a"
)
