file(REMOVE_RECURSE
  "CMakeFiles/stune_workload.dir/execute.cpp.o"
  "CMakeFiles/stune_workload.dir/execute.cpp.o.d"
  "CMakeFiles/stune_workload.dir/workload.cpp.o"
  "CMakeFiles/stune_workload.dir/workload.cpp.o.d"
  "libstune_workload.a"
  "libstune_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
