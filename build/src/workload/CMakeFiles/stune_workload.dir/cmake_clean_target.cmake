file(REMOVE_RECURSE
  "libstune_workload.a"
)
