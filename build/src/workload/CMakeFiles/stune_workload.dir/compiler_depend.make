# Empty compiler generated dependencies file for stune_workload.
# This may be replaced when dependencies are built.
