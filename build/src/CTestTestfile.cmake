# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("linalg")
subdirs("cluster")
subdirs("config")
subdirs("dag")
subdirs("disc")
subdirs("workload")
subdirs("model")
subdirs("tuning")
subdirs("adaptive")
subdirs("transfer")
subdirs("service")
