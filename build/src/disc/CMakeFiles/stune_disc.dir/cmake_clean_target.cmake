file(REMOVE_RECURSE
  "libstune_disc.a"
)
