file(REMOVE_RECURSE
  "CMakeFiles/stune_disc.dir/deployment.cpp.o"
  "CMakeFiles/stune_disc.dir/deployment.cpp.o.d"
  "CMakeFiles/stune_disc.dir/engine.cpp.o"
  "CMakeFiles/stune_disc.dir/engine.cpp.o.d"
  "CMakeFiles/stune_disc.dir/eventlog.cpp.o"
  "CMakeFiles/stune_disc.dir/eventlog.cpp.o.d"
  "CMakeFiles/stune_disc.dir/metrics.cpp.o"
  "CMakeFiles/stune_disc.dir/metrics.cpp.o.d"
  "CMakeFiles/stune_disc.dir/whatif.cpp.o"
  "CMakeFiles/stune_disc.dir/whatif.cpp.o.d"
  "libstune_disc.a"
  "libstune_disc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_disc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
