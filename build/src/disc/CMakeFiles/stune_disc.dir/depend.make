# Empty dependencies file for stune_disc.
# This may be replaced when dependencies are built.
