file(REMOVE_RECURSE
  "libstune_model.a"
)
