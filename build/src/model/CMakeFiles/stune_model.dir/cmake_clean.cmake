file(REMOVE_RECURSE
  "CMakeFiles/stune_model.dir/additive_gp.cpp.o"
  "CMakeFiles/stune_model.dir/additive_gp.cpp.o.d"
  "CMakeFiles/stune_model.dir/dataset.cpp.o"
  "CMakeFiles/stune_model.dir/dataset.cpp.o.d"
  "CMakeFiles/stune_model.dir/gp.cpp.o"
  "CMakeFiles/stune_model.dir/gp.cpp.o.d"
  "CMakeFiles/stune_model.dir/kmedoids.cpp.o"
  "CMakeFiles/stune_model.dir/kmedoids.cpp.o.d"
  "CMakeFiles/stune_model.dir/linear.cpp.o"
  "CMakeFiles/stune_model.dir/linear.cpp.o.d"
  "CMakeFiles/stune_model.dir/tree.cpp.o"
  "CMakeFiles/stune_model.dir/tree.cpp.o.d"
  "libstune_model.a"
  "libstune_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
