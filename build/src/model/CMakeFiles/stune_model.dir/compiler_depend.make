# Empty compiler generated dependencies file for stune_model.
# This may be replaced when dependencies are built.
