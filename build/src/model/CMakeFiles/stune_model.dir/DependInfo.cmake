
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/additive_gp.cpp" "src/model/CMakeFiles/stune_model.dir/additive_gp.cpp.o" "gcc" "src/model/CMakeFiles/stune_model.dir/additive_gp.cpp.o.d"
  "/root/repo/src/model/dataset.cpp" "src/model/CMakeFiles/stune_model.dir/dataset.cpp.o" "gcc" "src/model/CMakeFiles/stune_model.dir/dataset.cpp.o.d"
  "/root/repo/src/model/gp.cpp" "src/model/CMakeFiles/stune_model.dir/gp.cpp.o" "gcc" "src/model/CMakeFiles/stune_model.dir/gp.cpp.o.d"
  "/root/repo/src/model/kmedoids.cpp" "src/model/CMakeFiles/stune_model.dir/kmedoids.cpp.o" "gcc" "src/model/CMakeFiles/stune_model.dir/kmedoids.cpp.o.d"
  "/root/repo/src/model/linear.cpp" "src/model/CMakeFiles/stune_model.dir/linear.cpp.o" "gcc" "src/model/CMakeFiles/stune_model.dir/linear.cpp.o.d"
  "/root/repo/src/model/tree.cpp" "src/model/CMakeFiles/stune_model.dir/tree.cpp.o" "gcc" "src/model/CMakeFiles/stune_model.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/stune_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/stune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
