file(REMOVE_RECURSE
  "CMakeFiles/stune_adaptive.dir/change_detector.cpp.o"
  "CMakeFiles/stune_adaptive.dir/change_detector.cpp.o.d"
  "CMakeFiles/stune_adaptive.dir/retuning_policy.cpp.o"
  "CMakeFiles/stune_adaptive.dir/retuning_policy.cpp.o.d"
  "libstune_adaptive.a"
  "libstune_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
