# Empty compiler generated dependencies file for stune_adaptive.
# This may be replaced when dependencies are built.
