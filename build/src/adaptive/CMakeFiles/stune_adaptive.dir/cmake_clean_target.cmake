file(REMOVE_RECURSE
  "libstune_adaptive.a"
)
