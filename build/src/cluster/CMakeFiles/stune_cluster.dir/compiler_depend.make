# Empty compiler generated dependencies file for stune_cluster.
# This may be replaced when dependencies are built.
