file(REMOVE_RECURSE
  "CMakeFiles/stune_cluster.dir/cluster.cpp.o"
  "CMakeFiles/stune_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/stune_cluster.dir/contention.cpp.o"
  "CMakeFiles/stune_cluster.dir/contention.cpp.o.d"
  "CMakeFiles/stune_cluster.dir/instance_type.cpp.o"
  "CMakeFiles/stune_cluster.dir/instance_type.cpp.o.d"
  "libstune_cluster.a"
  "libstune_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
