file(REMOVE_RECURSE
  "libstune_cluster.a"
)
