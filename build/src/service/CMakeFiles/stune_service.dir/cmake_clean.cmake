file(REMOVE_RECURSE
  "CMakeFiles/stune_service.dir/cloud_tuner.cpp.o"
  "CMakeFiles/stune_service.dir/cloud_tuner.cpp.o.d"
  "CMakeFiles/stune_service.dir/cost_ledger.cpp.o"
  "CMakeFiles/stune_service.dir/cost_ledger.cpp.o.d"
  "CMakeFiles/stune_service.dir/knowledge_base.cpp.o"
  "CMakeFiles/stune_service.dir/knowledge_base.cpp.o.d"
  "CMakeFiles/stune_service.dir/slo.cpp.o"
  "CMakeFiles/stune_service.dir/slo.cpp.o.d"
  "CMakeFiles/stune_service.dir/tradeoff.cpp.o"
  "CMakeFiles/stune_service.dir/tradeoff.cpp.o.d"
  "CMakeFiles/stune_service.dir/tuning_service.cpp.o"
  "CMakeFiles/stune_service.dir/tuning_service.cpp.o.d"
  "libstune_service.a"
  "libstune_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
