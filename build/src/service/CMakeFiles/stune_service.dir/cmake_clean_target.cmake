file(REMOVE_RECURSE
  "libstune_service.a"
)
