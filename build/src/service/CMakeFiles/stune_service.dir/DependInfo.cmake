
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/cloud_tuner.cpp" "src/service/CMakeFiles/stune_service.dir/cloud_tuner.cpp.o" "gcc" "src/service/CMakeFiles/stune_service.dir/cloud_tuner.cpp.o.d"
  "/root/repo/src/service/cost_ledger.cpp" "src/service/CMakeFiles/stune_service.dir/cost_ledger.cpp.o" "gcc" "src/service/CMakeFiles/stune_service.dir/cost_ledger.cpp.o.d"
  "/root/repo/src/service/knowledge_base.cpp" "src/service/CMakeFiles/stune_service.dir/knowledge_base.cpp.o" "gcc" "src/service/CMakeFiles/stune_service.dir/knowledge_base.cpp.o.d"
  "/root/repo/src/service/slo.cpp" "src/service/CMakeFiles/stune_service.dir/slo.cpp.o" "gcc" "src/service/CMakeFiles/stune_service.dir/slo.cpp.o.d"
  "/root/repo/src/service/tradeoff.cpp" "src/service/CMakeFiles/stune_service.dir/tradeoff.cpp.o" "gcc" "src/service/CMakeFiles/stune_service.dir/tradeoff.cpp.o.d"
  "/root/repo/src/service/tuning_service.cpp" "src/service/CMakeFiles/stune_service.dir/tuning_service.cpp.o" "gcc" "src/service/CMakeFiles/stune_service.dir/tuning_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/stune_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/stune_config.dir/DependInfo.cmake"
  "/root/repo/build/src/disc/CMakeFiles/stune_disc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/stune_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/stune_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/stune_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/stune_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/stune_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/stune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/stune_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/stune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
