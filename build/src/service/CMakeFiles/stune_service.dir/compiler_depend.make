# Empty compiler generated dependencies file for stune_service.
# This may be replaced when dependencies are built.
