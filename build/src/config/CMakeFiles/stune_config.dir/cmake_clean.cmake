file(REMOVE_RECURSE
  "CMakeFiles/stune_config.dir/config_space.cpp.o"
  "CMakeFiles/stune_config.dir/config_space.cpp.o.d"
  "CMakeFiles/stune_config.dir/param.cpp.o"
  "CMakeFiles/stune_config.dir/param.cpp.o.d"
  "CMakeFiles/stune_config.dir/spark_space.cpp.o"
  "CMakeFiles/stune_config.dir/spark_space.cpp.o.d"
  "libstune_config.a"
  "libstune_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
