file(REMOVE_RECURSE
  "libstune_config.a"
)
