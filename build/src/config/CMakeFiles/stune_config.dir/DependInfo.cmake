
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/config_space.cpp" "src/config/CMakeFiles/stune_config.dir/config_space.cpp.o" "gcc" "src/config/CMakeFiles/stune_config.dir/config_space.cpp.o.d"
  "/root/repo/src/config/param.cpp" "src/config/CMakeFiles/stune_config.dir/param.cpp.o" "gcc" "src/config/CMakeFiles/stune_config.dir/param.cpp.o.d"
  "/root/repo/src/config/spark_space.cpp" "src/config/CMakeFiles/stune_config.dir/spark_space.cpp.o" "gcc" "src/config/CMakeFiles/stune_config.dir/spark_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/stune_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
