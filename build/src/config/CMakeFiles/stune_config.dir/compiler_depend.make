# Empty compiler generated dependencies file for stune_config.
# This may be replaced when dependencies are built.
