file(REMOVE_RECURSE
  "libstune_simcore.a"
)
