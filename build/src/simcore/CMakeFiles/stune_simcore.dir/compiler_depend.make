# Empty compiler generated dependencies file for stune_simcore.
# This may be replaced when dependencies are built.
