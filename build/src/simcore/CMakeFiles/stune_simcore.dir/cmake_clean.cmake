file(REMOVE_RECURSE
  "CMakeFiles/stune_simcore.dir/rng.cpp.o"
  "CMakeFiles/stune_simcore.dir/rng.cpp.o.d"
  "CMakeFiles/stune_simcore.dir/stats.cpp.o"
  "CMakeFiles/stune_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/stune_simcore.dir/units.cpp.o"
  "CMakeFiles/stune_simcore.dir/units.cpp.o.d"
  "libstune_simcore.a"
  "libstune_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
