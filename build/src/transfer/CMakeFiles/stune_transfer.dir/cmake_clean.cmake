file(REMOVE_RECURSE
  "CMakeFiles/stune_transfer.dir/aroma.cpp.o"
  "CMakeFiles/stune_transfer.dir/aroma.cpp.o.d"
  "CMakeFiles/stune_transfer.dir/characterization.cpp.o"
  "CMakeFiles/stune_transfer.dir/characterization.cpp.o.d"
  "CMakeFiles/stune_transfer.dir/warm_start.cpp.o"
  "CMakeFiles/stune_transfer.dir/warm_start.cpp.o.d"
  "libstune_transfer.a"
  "libstune_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
