# Empty compiler generated dependencies file for stune_transfer.
# This may be replaced when dependencies are built.
