
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/aroma.cpp" "src/transfer/CMakeFiles/stune_transfer.dir/aroma.cpp.o" "gcc" "src/transfer/CMakeFiles/stune_transfer.dir/aroma.cpp.o.d"
  "/root/repo/src/transfer/characterization.cpp" "src/transfer/CMakeFiles/stune_transfer.dir/characterization.cpp.o" "gcc" "src/transfer/CMakeFiles/stune_transfer.dir/characterization.cpp.o.d"
  "/root/repo/src/transfer/warm_start.cpp" "src/transfer/CMakeFiles/stune_transfer.dir/warm_start.cpp.o" "gcc" "src/transfer/CMakeFiles/stune_transfer.dir/warm_start.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/disc/CMakeFiles/stune_disc.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/stune_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/stune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/stune_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/stune_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/stune_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/stune_config.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/stune_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
