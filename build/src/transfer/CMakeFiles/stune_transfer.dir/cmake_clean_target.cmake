file(REMOVE_RECURSE
  "libstune_transfer.a"
)
