file(REMOVE_RECURSE
  "CMakeFiles/stune_linalg.dir/matrix.cpp.o"
  "CMakeFiles/stune_linalg.dir/matrix.cpp.o.d"
  "libstune_linalg.a"
  "libstune_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
