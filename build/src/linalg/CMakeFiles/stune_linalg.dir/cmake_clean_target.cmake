file(REMOVE_RECURSE
  "libstune_linalg.a"
)
