# Empty dependencies file for stune_linalg.
# This may be replaced when dependencies are built.
