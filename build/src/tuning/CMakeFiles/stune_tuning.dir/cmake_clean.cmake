file(REMOVE_RECURSE
  "CMakeFiles/stune_tuning.dir/bayesopt.cpp.o"
  "CMakeFiles/stune_tuning.dir/bayesopt.cpp.o.d"
  "CMakeFiles/stune_tuning.dir/bestconfig.cpp.o"
  "CMakeFiles/stune_tuning.dir/bestconfig.cpp.o.d"
  "CMakeFiles/stune_tuning.dir/genetic.cpp.o"
  "CMakeFiles/stune_tuning.dir/genetic.cpp.o.d"
  "CMakeFiles/stune_tuning.dir/rl.cpp.o"
  "CMakeFiles/stune_tuning.dir/rl.cpp.o.d"
  "CMakeFiles/stune_tuning.dir/rtree.cpp.o"
  "CMakeFiles/stune_tuning.dir/rtree.cpp.o.d"
  "CMakeFiles/stune_tuning.dir/simple_tuners.cpp.o"
  "CMakeFiles/stune_tuning.dir/simple_tuners.cpp.o.d"
  "CMakeFiles/stune_tuning.dir/tuner.cpp.o"
  "CMakeFiles/stune_tuning.dir/tuner.cpp.o.d"
  "libstune_tuning.a"
  "libstune_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
