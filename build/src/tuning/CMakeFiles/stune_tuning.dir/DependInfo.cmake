
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuning/bayesopt.cpp" "src/tuning/CMakeFiles/stune_tuning.dir/bayesopt.cpp.o" "gcc" "src/tuning/CMakeFiles/stune_tuning.dir/bayesopt.cpp.o.d"
  "/root/repo/src/tuning/bestconfig.cpp" "src/tuning/CMakeFiles/stune_tuning.dir/bestconfig.cpp.o" "gcc" "src/tuning/CMakeFiles/stune_tuning.dir/bestconfig.cpp.o.d"
  "/root/repo/src/tuning/genetic.cpp" "src/tuning/CMakeFiles/stune_tuning.dir/genetic.cpp.o" "gcc" "src/tuning/CMakeFiles/stune_tuning.dir/genetic.cpp.o.d"
  "/root/repo/src/tuning/rl.cpp" "src/tuning/CMakeFiles/stune_tuning.dir/rl.cpp.o" "gcc" "src/tuning/CMakeFiles/stune_tuning.dir/rl.cpp.o.d"
  "/root/repo/src/tuning/rtree.cpp" "src/tuning/CMakeFiles/stune_tuning.dir/rtree.cpp.o" "gcc" "src/tuning/CMakeFiles/stune_tuning.dir/rtree.cpp.o.d"
  "/root/repo/src/tuning/simple_tuners.cpp" "src/tuning/CMakeFiles/stune_tuning.dir/simple_tuners.cpp.o" "gcc" "src/tuning/CMakeFiles/stune_tuning.dir/simple_tuners.cpp.o.d"
  "/root/repo/src/tuning/tuner.cpp" "src/tuning/CMakeFiles/stune_tuning.dir/tuner.cpp.o" "gcc" "src/tuning/CMakeFiles/stune_tuning.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/stune_config.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/stune_model.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/stune_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/stune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
