file(REMOVE_RECURSE
  "libstune_tuning.a"
)
