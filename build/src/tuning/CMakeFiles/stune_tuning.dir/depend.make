# Empty dependencies file for stune_tuning.
# This may be replaced when dependencies are built.
