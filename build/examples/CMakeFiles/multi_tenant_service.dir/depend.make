# Empty dependencies file for multi_tenant_service.
# This may be replaced when dependencies are built.
