file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_service.dir/multi_tenant_service.cpp.o"
  "CMakeFiles/multi_tenant_service.dir/multi_tenant_service.cpp.o.d"
  "multi_tenant_service"
  "multi_tenant_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
