# Empty compiler generated dependencies file for stune_cli.
# This may be replaced when dependencies are built.
