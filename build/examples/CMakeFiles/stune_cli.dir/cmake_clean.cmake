file(REMOVE_RECURSE
  "CMakeFiles/stune_cli.dir/stune_cli.cpp.o"
  "CMakeFiles/stune_cli.dir/stune_cli.cpp.o.d"
  "stune_cli"
  "stune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
