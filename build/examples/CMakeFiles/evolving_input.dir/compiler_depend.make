# Empty compiler generated dependencies file for evolving_input.
# This may be replaced when dependencies are built.
