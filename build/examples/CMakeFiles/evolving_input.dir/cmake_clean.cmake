file(REMOVE_RECURSE
  "CMakeFiles/evolving_input.dir/evolving_input.cpp.o"
  "CMakeFiles/evolving_input.dir/evolving_input.cpp.o.d"
  "evolving_input"
  "evolving_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
