file(REMOVE_RECURSE
  "CMakeFiles/cloud_provisioning.dir/cloud_provisioning.cpp.o"
  "CMakeFiles/cloud_provisioning.dir/cloud_provisioning.cpp.o.d"
  "cloud_provisioning"
  "cloud_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
